(** Pretty-printer for surface ASTs.

    Produces canonical specification text: parsing the output of
    [pp_program] yields an AST equal (up to locations) to the input,
    which the round-trip property tests exercise. *)

open Ast

let prec_of_binop = function
  | Or -> 1
  | And -> 2
  | Eq | Neq | Lt | Le | Gt | Ge -> 3
  | Add | Sub -> 4
  | Mul | Div | Mod -> 5

let rec pp_prec prec ppf (e : expr) =
  match e.desc with
  | Int n -> Fmt.int ppf n
  | Bool true -> Fmt.string ppf "TRUE"
  | Bool false -> Fmt.string ppf "FALSE"
  | Null -> Fmt.string ppf "NULL"
  | Register i -> Fmt.pf ppf "R%d" (i + 1)
  | Var s -> Fmt.string ppf s
  | Queue q -> Fmt.string ppf (queue_name q)
  | Subflows -> Fmt.string ppf "SUBFLOWS"
  | Unop (Not, a) -> Fmt.pf ppf "!%a" (pp_prec 6) a
  | Unop (Neg, a) -> Fmt.pf ppf "-%a" (pp_prec 6) a
  | Binop (op, a, b) ->
      let p = prec_of_binop op in
      (* Comparisons are non-associative in the grammar, so a comparison
         operand of a comparison must be parenthesized on both sides. *)
      let lp = match op with Eq | Neq | Lt | Le | Gt | Ge -> p + 1 | _ -> p in
      let body ppf () =
        Fmt.pf ppf "%a %s %a" (pp_prec lp) a (binop_name op)
          (pp_prec (p + 1)) b
      in
      if p < prec then Fmt.pf ppf "(%a)" body () else body ppf ()
  | Member (recv, name, []) when name = "POP" ->
      (* POP always prints with parentheses, as in the paper. *)
      Fmt.pf ppf "%a.POP()" (pp_prec 6) recv
  | Member (recv, name, []) -> Fmt.pf ppf "%a.%s" (pp_prec 6) recv name
  | Member (recv, name, args) ->
      Fmt.pf ppf "%a.%s(%a)" (pp_prec 6) recv name
        Fmt.(list ~sep:(any ", ") pp_arg)
        args

and pp_expr ppf e = pp_prec 0 ppf e

and pp_arg ppf = function
  | Arg_expr e -> pp_expr ppf e
  | Arg_lambda { param; body } -> Fmt.pf ppf "%s => %a" param pp_expr body

let rec pp_stmt ~indent ppf (s : stmt) =
  let pad = String.make indent ' ' in
  match s.stmt_desc with
  | Var_decl (name, e) -> Fmt.pf ppf "%sVAR %s = %a;" pad name pp_expr e
  | Set_register (r, e) -> Fmt.pf ppf "%sSET(R%d, %a);" pad (r + 1) pp_expr e
  | Drop e -> Fmt.pf ppf "%sDROP(%a);" pad pp_expr e
  | Return -> Fmt.pf ppf "%sRETURN;" pad
  | Expr_stmt e -> Fmt.pf ppf "%s%a;" pad pp_expr e
  | If (cond, then_, else_) -> (
      Fmt.pf ppf "%sIF (%a) {@\n%a@\n%s}" pad pp_expr cond
        (pp_block ~indent:(indent + 2))
        then_ pad;
      match else_ with
      | None -> ()
      | Some b ->
          Fmt.pf ppf " ELSE {@\n%a@\n%s}" (pp_block ~indent:(indent + 2)) b pad)
  | Foreach (name, e, body) ->
      Fmt.pf ppf "%sFOREACH (VAR %s IN %a) {@\n%a@\n%s}" pad name pp_expr e
        (pp_block ~indent:(indent + 2))
        body pad

and pp_block ~indent ppf (b : block) =
  Fmt.pf ppf "%a" Fmt.(list ~sep:(any "@\n") (pp_stmt ~indent)) b

let pp_program ppf (p : program) = pp_block ~indent:0 ppf p

let program_to_string p = Fmt.str "%a" pp_program p
