(** Typed intermediate representation of scheduler programs, produced by
    {!Typecheck.check}: variables resolved to slots, members resolved to
    typed operations, queue expressions normalized to views (base queue
    plus filter stack), and effect positions already validated. *)

type queue_id = Ast.queue_id = Send_queue | Unacked_queue | Reinject_queue

type binop = Ast.binop =
  | Add
  | Sub
  | Mul
  | Div
  | Mod
  | Eq
  | Neq
  | Lt
  | Le
  | Gt
  | Ge
  | And
  | Or

type expr = { desc : desc; ty : Ty.t; loc : Loc.t }

(** A one-parameter predicate/key function; the parameter lives in slot
    [param]. *)
and lambda = { param : int; param_ty : Ty.t; body : expr }

(** A queue view: the base kernel queue with zero or more filters applied
    lazily ("late materialization", paper §4.1). Views are never stored in
    variables. *)
and queue_view = { base : queue_id; filters : lambda list }

and desc =
  | Int_lit of int
  | Bool_lit of bool
  | Null of Ty.t  (** typed NULL; [ty] is [Packet] or [Subflow] *)
  | Register of int
  | Slot of int  (** local variable / lambda parameter / loop variable *)
  | Binop of binop * expr * expr
  | Not of expr
  | Neg of expr
  | Subflows  (** the full current subflow set *)
  | Sbf_filter of expr * lambda  (** subflow list -> subflow list *)
  | Sbf_min of expr * lambda  (** subflow list -> nullable subflow *)
  | Sbf_max of expr * lambda
  | Sbf_sum of expr * lambda  (** subflow list -> int *)
  | Sbf_get of expr * expr  (** list, index -> nullable subflow *)
  | Sbf_count of expr
  | Sbf_empty of expr
  | Sbf_prop of expr * Props.subflow_prop
  | Has_window_for of expr * expr  (** subflow, packet -> bool *)
  | Q_top of queue_view  (** first matching packet, not removed *)
  | Q_pop of queue_view  (** first matching packet, removed (effectful) *)
  | Q_min of queue_view * lambda  (** matching packet minimizing key *)
  | Q_max of queue_view * lambda
  | Q_count of queue_view
  | Q_empty of queue_view
  | Pkt_prop of expr * Props.packet_prop
  | Sent_on of expr * expr  (** packet, subflow -> bool *)

type stmt =
  | Var_decl of int * expr
  | If of expr * block * block
  | Foreach of int * expr * block  (** slot iterates over a subflow list *)
  | Set_register of int * expr
  | Push of expr * expr  (** subflow, packet *)
  | Drop of expr  (** evaluate for effect; discard the packet *)
  | Return

and block = stmt list

type program = {
  body : block;
  num_slots : int;  (** total variable slots used (frame size) *)
  slot_types : Ty.t array;
  source : string;  (** original specification text, for diagnostics *)
}


val fold_expr : ('a -> expr -> 'a) -> 'a -> expr -> 'a
(** Pre-order fold over an expression and its nested lambdas. *)

val fold_stmts : ('a -> expr -> 'a) -> 'a -> block -> 'a
(** Fold [fold_expr] over every expression of a block, recursively. *)

val uses_pop : program -> bool
(** Whether the program contains a [POP] anywhere. *)
