(** Static checking of scheduler specifications.

    Enforces the programming-model guarantees of the paper (Table 1):

    - static types with implicit typing of variables;
    - single-assignment variables (no reassignment, no shadowing);
    - side effects restricted to statement position: [POP] may only occur
      in the right-hand side of a [VAR], or as an argument of [PUSH] /
      [DROP]; predicates and keys of [FILTER]/[MIN]/[MAX]/[SUM], [IF]
      conditions, [FOREACH] sources and [SET] values are pure;
    - queue views cannot be stored in variables;
    - member names resolve against the model's concepts.

    On success, produces the typed program ({!Tast.program}) with all
    variables resolved to slots. *)

exception Error of string * Loc.t

let error loc fmt = Fmt.kstr (fun m -> raise (Error (m, loc))) fmt

(** Maximum variable slots per program: keeps scheduler frames small and
    statically sized, as required for in-kernel execution. *)
let max_slots = 64

type effect_ctx =
  | Effectful  (** [POP] permitted *)
  | Pure of string  (** [POP] forbidden; the string names the context *)

type env = {
  scope : (string * (int * Ty.t)) list;  (** innermost first *)
  next_slot : int ref;  (** shared across scope copies *)
  slot_types : Ty.t array;
}

let fresh_slot env ty loc =
  if !(env.next_slot) >= max_slots then
    error loc "too many variables: the model allows at most %d slots" max_slots;
  let slot = !(env.next_slot) in
  env.next_slot := slot + 1;
  env.slot_types.(slot) <- ty;
  slot

(* Single assignment: a name cannot be redeclared (or shadowed) while a
   binding for it is in scope; once the binding's scope ends (a lambda
   parameter after its lambda, a block-local after its block) the name may
   be reused, as in the paper's specifications, which use [sbf] for many
   lambda parameters. Every declaration still gets a fresh slot. *)
let declare env name ty loc =
  if List.mem_assoc name env.scope then
    error loc
      "variable %s is already defined in this scope: variables are \
       single-assignment and shadowing is not allowed"
      name;
  let slot = fresh_slot env ty loc in
  ({ env with scope = (name, (slot, ty)) :: env.scope }, slot)

let lookup env name loc =
  match List.assoc_opt name env.scope with
  | Some v -> v
  | None -> error loc "unknown variable %s" name

let te desc ty loc : Tast.expr = { Tast.desc; ty; loc }

(* Equality is defined on ints, bools and on nullable entities (packet,
   subflow), where it means identity; NULL literals adopt the type of the
   other operand. *)
let check_equality op (a : Tast.expr) (b : Tast.expr) loc =
  let mk x y = te (Tast.Binop (op, x, y)) Ty.Bool loc in
  match (a.ty, b.ty, a.desc, b.desc) with
  | Ty.Int, Ty.Int, _, _ | Ty.Bool, Ty.Bool, _, _ -> mk a b
  | Ty.Packet, Ty.Packet, _, _ | Ty.Subflow, Ty.Subflow, _, _ -> mk a b
  (* One side is an untyped NULL placeholder (typed as Packet by default in
     [check_expr]); retype it from the other operand. *)
  | _, _, Tast.Null _, _ when b.ty = Ty.Packet || b.ty = Ty.Subflow ->
      mk (te (Tast.Null b.ty) b.ty a.loc) b
  | _, _, _, Tast.Null _ when a.ty = Ty.Packet || a.ty = Ty.Subflow ->
      mk a (te (Tast.Null a.ty) a.ty b.loc)
  | ta, tb, _, _ ->
      error loc "cannot compare %s with %s" (Ty.to_string ta) (Ty.to_string tb)

let rec check_expr env eff (e : Ast.expr) : Tast.expr =
  let loc = e.loc in
  match e.desc with
  | Ast.Int n -> te (Tast.Int_lit n) Ty.Int loc
  | Ast.Bool b -> te (Tast.Bool_lit b) Ty.Bool loc
  | Ast.Null ->
      (* Placeholder type; only legal directly under ==/!=, where it is
         retyped. Other uses are rejected by the surrounding rule. *)
      te (Tast.Null Ty.Packet) Ty.Packet loc
  | Ast.Register i -> te (Tast.Register i) Ty.Int loc
  | Ast.Var name ->
      let slot, ty = lookup env name loc in
      te (Tast.Slot slot) ty loc
  | Ast.Queue _ | Ast.Subflows | Ast.Member _ -> check_entity env eff e
  | Ast.Unop (Ast.Not, a) ->
      let ta = check_expr env eff a in
      if ta.ty <> Ty.Bool then
        error loc "! expects bool, found %s" (Ty.to_string ta.ty);
      te (Tast.Not ta) Ty.Bool loc
  | Ast.Unop (Ast.Neg, a) ->
      let ta = check_expr env eff a in
      if ta.ty <> Ty.Int then
        error loc "unary - expects int, found %s" (Ty.to_string ta.ty);
      te (Tast.Neg ta) Ty.Int loc
  | Ast.Binop (op, a, b) -> (
      let ta = check_expr env eff a in
      let tb = check_expr env eff b in
      match op with
      | Ast.Add | Ast.Sub | Ast.Mul | Ast.Div | Ast.Mod ->
          if ta.ty <> Ty.Int || tb.ty <> Ty.Int then
            error loc "%s expects int operands, found %s and %s"
              (Ast.binop_name op) (Ty.to_string ta.ty) (Ty.to_string tb.ty);
          te (Tast.Binop (op, ta, tb)) Ty.Int loc
      | Ast.Lt | Ast.Le | Ast.Gt | Ast.Ge ->
          if ta.ty <> Ty.Int || tb.ty <> Ty.Int then
            error loc "%s expects int operands, found %s and %s"
              (Ast.binop_name op) (Ty.to_string ta.ty) (Ty.to_string tb.ty);
          te (Tast.Binop (op, ta, tb)) Ty.Bool loc
      | Ast.Eq | Ast.Neq -> check_equality op ta tb loc
      | Ast.And | Ast.Or ->
          if ta.ty <> Ty.Bool || tb.ty <> Ty.Bool then
            error loc "%s expects bool operands, found %s and %s"
              (Ast.binop_name op) (Ty.to_string ta.ty) (Ty.to_string tb.ty);
          te (Tast.Binop (op, ta, tb)) Ty.Bool loc)

(* Entities are queue views, subflow lists, subflows and packets, built
   from the roots Q/QU/RQ/SUBFLOWS/variables through member chains. Queue
   views are kept symbolic ({!Tast.queue_view}) until consumed by
   TOP/POP/COUNT/EMPTY/MIN/MAX. *)
and check_entity env eff (e : Ast.expr) : Tast.expr =
  match check_entity_or_view env eff e with
  | `Expr te -> te
  | `View (_, loc) ->
      error loc
        "a packet queue cannot be used as a value here; finish the \
         expression with TOP, POP(), COUNT, EMPTY, MIN or MAX"

and check_entity_or_view env eff (e : Ast.expr) :
    [ `Expr of Tast.expr | `View of Tast.queue_view * Loc.t ] =
  let loc = e.loc in
  match e.desc with
  | Ast.Queue q -> `View ({ Tast.base = q; filters = [] }, loc)
  | Ast.Subflows -> `Expr (te Tast.Subflows Ty.Subflow_list loc)
  | Ast.Member (recv, name, args) -> check_member env eff recv name args loc
  | _ -> `Expr (check_expr env eff e)

and check_lambda env name ~param_ty ~body_ty (lam : Ast.lambda) loc :
    Tast.lambda =
  let env', slot = declare env lam.Ast.param param_ty lam.Ast.body.Ast.loc in
  let tbody =
    check_expr env'
      (Pure (Fmt.str "the %s predicate" name))
      lam.Ast.body
  in
  if tbody.ty <> body_ty then
    error loc "%s expects a %s-valued function, found %s" name
      (Ty.to_string body_ty) (Ty.to_string tbody.ty);
  { Tast.param = slot; param_ty; body = tbody }

and expect_lambda name args loc =
  match args with
  | [ Ast.Arg_lambda lam ] -> lam
  | _ -> error loc "%s expects exactly one argument of the form x => expr" name

and expect_expr_arg env eff name args loc =
  match args with
  | [ Ast.Arg_expr a ] -> check_expr env eff a
  | _ -> error loc "%s expects exactly one expression argument" name

and expect_no_args name args loc =
  match args with
  | [] -> ()
  | _ -> error loc "%s does not take arguments" name

and check_member env eff recv name args loc :
    [ `Expr of Tast.expr | `View of Tast.queue_view * Loc.t ] =
  match check_entity_or_view env eff recv with
  | `View (view, _) -> check_queue_member env eff view name args loc
  | `Expr trecv -> (
      match trecv.ty with
      | Ty.Subflow_list -> `Expr (check_sbf_list_member env eff trecv name args loc)
      | Ty.Subflow -> `Expr (check_subflow_member env eff trecv name args loc)
      | Ty.Packet -> `Expr (check_packet_member env eff trecv name args loc)
      | ty ->
          error loc "%s values have no member %s" (Ty.to_string ty) name)

and check_queue_member env eff view name args loc :
    [ `Expr of Tast.expr | `View of Tast.queue_view * Loc.t ] =
  match name with
  | "FILTER" ->
      let lam = expect_lambda "FILTER" args loc in
      let tlam =
        check_lambda env "FILTER" ~param_ty:Ty.Packet ~body_ty:Ty.Bool lam loc
      in
      `View ({ view with Tast.filters = view.Tast.filters @ [ tlam ] }, loc)
  | "TOP" ->
      expect_no_args "TOP" args loc;
      `Expr (te (Tast.Q_top view) Ty.Packet loc)
  | "POP" ->
      (match eff with
      | Effectful -> ()
      | Pure ctx ->
          error loc
            "POP() removes a packet and is not allowed in %s; side effects \
             are restricted to PUSH, DROP and VAR statements"
            ctx);
      expect_no_args "POP" args loc;
      `Expr (te (Tast.Q_pop view) Ty.Packet loc)
  | "MIN" | "MAX" ->
      let lam = expect_lambda name args loc in
      let tlam =
        check_lambda env name ~param_ty:Ty.Packet ~body_ty:Ty.Int lam loc
      in
      let desc =
        if name = "MIN" then Tast.Q_min (view, tlam) else Tast.Q_max (view, tlam)
      in
      `Expr (te desc Ty.Packet loc)
  | "COUNT" ->
      expect_no_args "COUNT" args loc;
      `Expr (te (Tast.Q_count view) Ty.Int loc)
  | "EMPTY" ->
      expect_no_args "EMPTY" args loc;
      `Expr (te (Tast.Q_empty view) Ty.Bool loc)
  | _ ->
      error loc
        "packet queues have no member %s (expected FILTER, TOP, POP, MIN, \
         MAX, COUNT or EMPTY)"
        name

and check_sbf_list_member env _eff trecv name args loc : Tast.expr =
  match name with
  | "FILTER" ->
      let lam = expect_lambda "FILTER" args loc in
      let tlam =
        check_lambda env "FILTER" ~param_ty:Ty.Subflow ~body_ty:Ty.Bool lam loc
      in
      te (Tast.Sbf_filter (trecv, tlam)) Ty.Subflow_list loc
  | "MIN" | "MAX" | "SUM" ->
      let lam = expect_lambda name args loc in
      let tlam =
        check_lambda env name ~param_ty:Ty.Subflow ~body_ty:Ty.Int lam loc
      in
      let desc, ty =
        match name with
        | "MIN" -> (Tast.Sbf_min (trecv, tlam), Ty.Subflow)
        | "MAX" -> (Tast.Sbf_max (trecv, tlam), Ty.Subflow)
        | _ -> (Tast.Sbf_sum (trecv, tlam), Ty.Int)
      in
      te desc ty loc
  | "GET" ->
      let idx = expect_expr_arg env (Pure "a GET index") "GET" args loc in
      if idx.ty <> Ty.Int then
        error loc "GET expects an int index, found %s" (Ty.to_string idx.ty);
      te (Tast.Sbf_get (trecv, idx)) Ty.Subflow loc
  | "COUNT" ->
      expect_no_args "COUNT" args loc;
      te (Tast.Sbf_count trecv) Ty.Int loc
  | "EMPTY" ->
      expect_no_args "EMPTY" args loc;
      te (Tast.Sbf_empty trecv) Ty.Bool loc
  | _ ->
      error loc
        "subflow lists have no member %s (expected FILTER, MIN, MAX, SUM, \
         GET, COUNT or EMPTY)"
        name

and check_subflow_member env eff trecv name args loc : Tast.expr =
  match Props.subflow_prop_of_name name with
  | Some prop ->
      expect_no_args name args loc;
      te (Tast.Sbf_prop (trecv, prop)) (Props.subflow_prop_type prop) loc
  | None -> (
      match name with
      | "HAS_WINDOW_FOR" ->
          let pkt = expect_expr_arg env eff "HAS_WINDOW_FOR" args loc in
          if pkt.ty <> Ty.Packet then
            error loc "HAS_WINDOW_FOR expects a packet, found %s"
              (Ty.to_string pkt.ty);
          te (Tast.Has_window_for (trecv, pkt)) Ty.Bool loc
      | "PUSH" ->
          error loc
            "PUSH is a statement, not an expression; write it on its own \
             line: sbf.PUSH(...);"
      | _ -> error loc "subflows have no property %s" name)

and check_packet_member env eff trecv name args loc : Tast.expr =
  match Props.packet_prop_of_name name with
  | Some prop ->
      expect_no_args name args loc;
      te (Tast.Pkt_prop (trecv, prop)) (Props.packet_prop_type prop) loc
  | None -> (
      match name with
      | "SENT_ON" ->
          let sbf = expect_expr_arg env eff "SENT_ON" args loc in
          if sbf.ty <> Ty.Subflow then
            error loc "SENT_ON expects a subflow, found %s" (Ty.to_string sbf.ty);
          te (Tast.Sent_on (trecv, sbf)) Ty.Bool loc
      | _ -> error loc "packets have no property %s" name)

let reject_null (e : Tast.expr) what =
  match e.desc with
  | Tast.Null _ -> error e.loc "NULL cannot be used as %s" what
  | _ -> ()

let rec check_stmt env (s : Ast.stmt) : env * Tast.stmt =
  let loc = s.stmt_loc in
  match s.stmt_desc with
  | Ast.Var_decl (name, rhs) ->
      let trhs = check_expr env Effectful rhs in
      reject_null trhs "the value of a variable";
      if not (Ty.storable trhs.ty) then
        error loc
          "a %s cannot be stored in a variable; consume the queue view \
           where it is built"
          (Ty.to_string trhs.ty);
      let env', slot = declare env name trhs.ty loc in
      (env', Tast.Var_decl (slot, trhs))
  | Ast.If (cond, then_, else_) ->
      let tcond = check_expr env (Pure "an IF condition") cond in
      if tcond.ty <> Ty.Bool then
        error loc "IF expects a bool condition, found %s" (Ty.to_string tcond.ty);
      let tthen = check_block env then_ in
      let telse = match else_ with None -> [] | Some b -> check_block env b in
      (env, Tast.If (tcond, tthen, telse))
  | Ast.Foreach (name, src, body) ->
      let tsrc = check_expr env (Pure "a FOREACH source") src in
      if tsrc.ty <> Ty.Subflow_list then
        error loc "FOREACH iterates over a subflow list, found %s"
          (Ty.to_string tsrc.ty);
      let env', slot = declare env name Ty.Subflow loc in
      let tbody = check_block env' body in
      (env, Tast.Foreach (slot, tsrc, tbody))
  | Ast.Set_register (reg, rhs) ->
      let trhs = check_expr env (Pure "a SET value") rhs in
      if trhs.ty <> Ty.Int then
        error loc "SET expects an int value, found %s" (Ty.to_string trhs.ty);
      (env, Tast.Set_register (reg, trhs))
  | Ast.Drop rhs ->
      let trhs = check_expr env Effectful rhs in
      reject_null trhs "the argument of DROP";
      if trhs.ty <> Ty.Packet then
        error loc "DROP expects a packet, found %s" (Ty.to_string trhs.ty);
      (env, Tast.Drop trhs)
  | Ast.Return -> (env, Tast.Return)
  | Ast.Expr_stmt { desc = Ast.Member (recv, "PUSH", args); loc = mloc } ->
      let trecv = check_expr env (Pure "a PUSH target") recv in
      if trecv.ty <> Ty.Subflow then
        error mloc "PUSH expects a subflow target, found %s"
          (Ty.to_string trecv.ty);
      let pkt = expect_expr_arg env Effectful "PUSH" args mloc in
      reject_null pkt "the argument of PUSH";
      if pkt.ty <> Ty.Packet then
        error mloc "PUSH expects a packet, found %s" (Ty.to_string pkt.ty);
      (env, Tast.Push (trecv, pkt))
  | Ast.Expr_stmt _ ->
      error loc
        "only PUSH calls may appear in statement position; expressions \
         without effect are dead code by the model's rules"

and check_block env (b : Ast.block) : Tast.block =
  (* Declarations are visible to later statements of the same block but go
     out of scope with it; slots are never reused, preserving
     single-assignment at the frame level. *)
  let _, rev =
    List.fold_left
      (fun (env, acc) s ->
        let env', ts = check_stmt env s in
        (env', ts :: acc))
      (env, []) b
  in
  List.rev rev

(** Type-check a parsed program. @raise Error on any violation. *)
let check ?(source = "") (p : Ast.program) : Tast.program =
  let env =
    { scope = []; next_slot = ref 0; slot_types = Array.make max_slots Ty.Int }
  in
  let body = check_block env p in
  {
    Tast.body;
    num_slots = !(env.next_slot);
    slot_types = Array.sub env.slot_types 0 !(env.next_slot);
    source;
  }

(** Convenience: parse and check in one step. *)
let compile_source src = check ~source:src (Parser.parse src)
