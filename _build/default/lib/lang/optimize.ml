(** Optimization passes over the typed IR (paper §4.1, "Runtime
    Optimizations").

    The declarative language elements make these safe and simple:
    predicates and keys are statically pure, so folding and pruning them
    can never drop a side effect. Implemented passes:

    - constant folding of integer arithmetic, comparisons and boolean
      operators (with the model's division-by-zero-is-zero semantics);
    - boolean short-circuit simplification ([TRUE AND e] -> [e],
      [FALSE AND e] -> [FALSE], dually for [OR], double negation);
    - branch pruning: [IF] with a constant condition inlines the taken
      branch; empty [IF]s with pure conditions disappear;
    - dead-code elimination after [RETURN].

    Late materialization of FILTER chains and the constant-subflow-count
    specialization are performed by the execution backends themselves
    (see [Progmp_runtime.Interpreter] and [Progmp_compiler.Codegen]). *)

let rec opt_expr (e : Tast.expr) : Tast.expr =
  let mk desc = { e with Tast.desc } in
  match e.Tast.desc with
  | Tast.Int_lit _ | Tast.Bool_lit _ | Tast.Null _ | Tast.Register _
  | Tast.Slot _ | Tast.Subflows ->
      e
  | Tast.Not a -> (
      match (opt_expr a).Tast.desc with
      | Tast.Bool_lit b -> mk (Tast.Bool_lit (not b))
      | Tast.Not inner -> inner.Tast.desc |> mk
      | desc -> mk (Tast.Not (mk desc)))
  | Tast.Neg a -> (
      let a' = opt_expr a in
      match a'.Tast.desc with
      | Tast.Int_lit n -> mk (Tast.Int_lit (-n))
      | _ -> mk (Tast.Neg a'))
  | Tast.Binop (op, a, b) -> opt_binop e op (opt_expr a) (opt_expr b)
  | Tast.Sbf_filter (l, lam) -> mk (Tast.Sbf_filter (opt_expr l, opt_lambda lam))
  | Tast.Sbf_min (l, lam) -> mk (Tast.Sbf_min (opt_expr l, opt_lambda lam))
  | Tast.Sbf_max (l, lam) -> mk (Tast.Sbf_max (opt_expr l, opt_lambda lam))
  | Tast.Sbf_sum (l, lam) -> mk (Tast.Sbf_sum (opt_expr l, opt_lambda lam))
  | Tast.Sbf_get (l, i) -> mk (Tast.Sbf_get (opt_expr l, opt_expr i))
  | Tast.Sbf_count l -> mk (Tast.Sbf_count (opt_expr l))
  | Tast.Sbf_empty l -> mk (Tast.Sbf_empty (opt_expr l))
  | Tast.Sbf_prop (s, p) -> mk (Tast.Sbf_prop (opt_expr s, p))
  | Tast.Has_window_for (s, p) ->
      mk (Tast.Has_window_for (opt_expr s, opt_expr p))
  | Tast.Q_top v -> mk (Tast.Q_top (opt_view v))
  | Tast.Q_pop v -> mk (Tast.Q_pop (opt_view v))
  | Tast.Q_min (v, lam) -> mk (Tast.Q_min (opt_view v, opt_lambda lam))
  | Tast.Q_max (v, lam) -> mk (Tast.Q_max (opt_view v, opt_lambda lam))
  | Tast.Q_count v -> mk (Tast.Q_count (opt_view v))
  | Tast.Q_empty v -> mk (Tast.Q_empty (opt_view v))
  | Tast.Pkt_prop (p, prop) -> mk (Tast.Pkt_prop (opt_expr p, prop))
  | Tast.Sent_on (p, s) -> mk (Tast.Sent_on (opt_expr p, opt_expr s))

and opt_lambda (lam : Tast.lambda) : Tast.lambda =
  (* A filter whose body folded to TRUE could be dropped from its view;
     we keep the lambda node (simpler) but with the folded body. *)
  { lam with Tast.body = opt_expr lam.Tast.body }

and opt_view (v : Tast.queue_view) : Tast.queue_view =
  let filters =
    List.filter
      (fun (lam : Tast.lambda) ->
        (* drop always-true filters: pure by construction *)
        match lam.Tast.body.Tast.desc with
        | Tast.Bool_lit true -> false
        | _ -> true)
      (List.map opt_lambda v.Tast.filters)
  in
  { v with Tast.filters }

and opt_binop (e : Tast.expr) op (a : Tast.expr) (b : Tast.expr) : Tast.expr =
  let mk desc = { e with Tast.desc } in
  let int_result n = mk (Tast.Int_lit n) in
  let bool_result v = mk (Tast.Bool_lit v) in
  match (op, a.Tast.desc, b.Tast.desc) with
  (* integer arithmetic, with the model's total division semantics *)
  | Tast.Add, Tast.Int_lit x, Tast.Int_lit y -> int_result (x + y)
  | Tast.Sub, Tast.Int_lit x, Tast.Int_lit y -> int_result (x - y)
  | Tast.Mul, Tast.Int_lit x, Tast.Int_lit y -> int_result (x * y)
  | Tast.Div, Tast.Int_lit x, Tast.Int_lit y ->
      int_result (if y = 0 then 0 else x / y)
  | Tast.Mod, Tast.Int_lit x, Tast.Int_lit y ->
      int_result (if y = 0 then 0 else x mod y)
  (* comparisons on literals *)
  | Tast.Lt, Tast.Int_lit x, Tast.Int_lit y -> bool_result (x < y)
  | Tast.Le, Tast.Int_lit x, Tast.Int_lit y -> bool_result (x <= y)
  | Tast.Gt, Tast.Int_lit x, Tast.Int_lit y -> bool_result (x > y)
  | Tast.Ge, Tast.Int_lit x, Tast.Int_lit y -> bool_result (x >= y)
  | Tast.Eq, Tast.Int_lit x, Tast.Int_lit y -> bool_result (x = y)
  | Tast.Neq, Tast.Int_lit x, Tast.Int_lit y -> bool_result (x <> y)
  | Tast.Eq, Tast.Bool_lit x, Tast.Bool_lit y -> bool_result (x = y)
  | Tast.Neq, Tast.Bool_lit x, Tast.Bool_lit y -> bool_result (x <> y)
  | (Tast.Eq | Tast.Neq), Tast.Null _, Tast.Null _ ->
      bool_result (op = Tast.Eq)
  (* boolean short circuits: the discarded operand is statically pure *)
  | Tast.And, Tast.Bool_lit true, _ -> b
  | Tast.And, Tast.Bool_lit false, _ -> bool_result false
  | Tast.And, _, Tast.Bool_lit true -> a
  | Tast.Or, Tast.Bool_lit false, _ -> b
  | Tast.Or, Tast.Bool_lit true, _ -> bool_result true
  | Tast.Or, _, Tast.Bool_lit false -> a
  (* arithmetic identities *)
  | Tast.Add, Tast.Int_lit 0, _ -> b
  | (Tast.Add | Tast.Sub), _, Tast.Int_lit 0 -> a
  | Tast.Mul, Tast.Int_lit 1, _ -> b
  | (Tast.Mul | Tast.Div), _, Tast.Int_lit 1 -> a
  | _, _, _ -> mk (Tast.Binop (op, a, b))

(* An expression is effect-free when it contains no POP; only such
   conditions may be dropped together with an empty IF. Predicates are
   pure by typing, but an IF condition may pop in neither branch... the
   type system already forbids POP in conditions, so conditions are
   always droppable; we keep the check for robustness. *)
let rec effect_free (e : Tast.expr) =
  not
    (Tast.fold_expr
       (fun acc x -> acc || match x.Tast.desc with Tast.Q_pop _ -> true | _ -> false)
       false e)
  [@@warning "-32"]

and opt_stmt (s : Tast.stmt) : Tast.stmt option =
  match s with
  | Tast.Var_decl (slot, e) -> Some (Tast.Var_decl (slot, opt_expr e))
  | Tast.If (cond, then_, else_) -> (
      let cond = opt_expr cond in
      let then_ = opt_block then_ and else_ = opt_block else_ in
      match cond.Tast.desc with
      | Tast.Bool_lit true -> Some (Tast.If (cond, then_, []))
      | Tast.Bool_lit false -> (
          match else_ with [] -> None | _ -> Some (Tast.If (cond, [], else_)))
      | _ ->
          if then_ = [] && else_ = [] && effect_free cond then None
          else Some (Tast.If (cond, then_, else_)))
  | Tast.Foreach (slot, src, body) ->
      Some (Tast.Foreach (slot, opt_expr src, opt_block body))
  | Tast.Set_register (r, e) -> Some (Tast.Set_register (r, opt_expr e))
  | Tast.Push (s, p) -> Some (Tast.Push (opt_expr s, opt_expr p))
  | Tast.Drop e -> Some (Tast.Drop (opt_expr e))
  | Tast.Return -> Some Tast.Return

and opt_block (b : Tast.block) : Tast.block =
  (* drop statements after RETURN *)
  let rec go = function
    | [] -> []
    | s :: rest -> (
        match opt_stmt s with
        | Some (Tast.Return as r) -> [ r ]
        | Some s' -> s' :: go rest
        | None -> go rest)
  in
  go b

(** Optimize a program. Semantics-preserving: the differential test
    suite checks optimized against unoptimized execution on random
    programs and environments. *)
let program (p : Tast.program) : Tast.program =
  { p with Tast.body = opt_block p.Tast.body }
