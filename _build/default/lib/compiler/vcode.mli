(** Virtual code: the compiler's internal three-address form over an
    unbounded set of virtual registers, produced by {!Codegen} and
    consumed by {!Regalloc} and {!Emit}. Control flow uses symbolic
    labels; loop position spans drive the liveness extension across back
    edges. *)

type vreg = int

type label = int

type vinstr =
  | Vmovi of vreg * int
  | Vmov of vreg * vreg
  | Valu of Isa.aluop * vreg * vreg * vreg  (** dst := a op b *)
  | Valui of Isa.aluop * vreg * vreg * int  (** dst := a op imm *)
  | Vlabel of label
  | Vjmp of label
  | Vjcc of Isa.cond * vreg * vreg * label
  | Vjcci of Isa.cond * vreg * int * label
  | Vcall of Isa.helper * vreg list * vreg option
  | Vexit

type t = {
  code : vinstr array;
  num_vregs : int;
  loops : (int * int) list;  (** [start, stop)] position spans of loops *)
}

(** Emission buffer used by the code generator. *)
type builder = {
  mutable buf : vinstr list;  (** reversed *)
  mutable next_vreg : int;
  mutable next_label : int;
  mutable pos : int;
  mutable loop_spans : (int * int) list;
}

val create_builder : reserved_vregs:int -> builder

val fresh_vreg : builder -> vreg

val fresh_label : builder -> label

val emit : builder -> vinstr -> unit

val here : builder -> int

val record_loop : builder -> start:int -> stop:int -> unit
(** Mark positions [start, stop) as a loop body (header and back edge
    included). *)

val finish : builder -> num_vregs:int -> t

val defs_uses : vinstr -> vreg list * vreg list

val intervals : t -> (int * int) option array
(** Live intervals per vreg ([None] = never occurs): first to last
    occurrence, extended to the end of any loop the interval enters from
    before (a value live across a back edge must survive the whole
    loop). *)

val pp_vinstr : Format.formatter -> vinstr -> unit
