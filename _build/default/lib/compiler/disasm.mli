(** Disassembler for compiled scheduler code (the CLI's [compile -d]
    output and the debugging analogue of the paper's proc interface). *)

val pp_instr : Format.formatter -> Isa.instr -> unit

val pp_program : Format.formatter -> Isa.instr array -> unit

val to_string : Isa.instr array -> string
