(** Register allocation: linear scan with second-chance binpacking.

    The paper's cross-compiler uses the Second-Chance Binpacking variant
    of linear-scan allocation (Traub, Holloway, Smith, PLDI'98), chosen
    for its low compile-time cost compared to graph coloring. This module
    implements the binpacking view of that algorithm: each physical
    register is a timeline (a "bin") into which non-overlapping live
    intervals are packed.

    - Pass 1 is a classic linear scan over intervals sorted by start;
      when no register is free, the interval with the furthest end among
      the active ones is evicted to the stack (spill-furthest heuristic).
    - Pass 2 is the second chance: every interval that ended up on the
      stack is offered again to each register's timeline and packed into
      the first bin with a gap wide enough — registers often have such
      gaps after their earlier tenants expired.

    Unlike the full algorithm we do not split live ranges; a virtual
    register has one home for its whole lifetime. This forgoes some
    quality but keeps lowering single-pass and the verifier simple, and
    spill traffic only affects the constant factor of scheduler
    execution, which the overhead benchmark (Fig. 9) measures. *)

type home =
  | Reg of Isa.reg  (** one of the callee-saved registers r6..r9 *)
  | Stack of int  (** word slot in the frame *)

type allocation = {
  homes : home option array;  (** indexed by vreg; [None] = never used *)
  spill_slots : int;  (** number of stack slots consumed by spills *)
  spilled : int;  (** number of vregs living on the stack *)
}

let overlaps (s1, e1) (s2, e2) = not (e1 < s2 || e2 < s1)

let allocate (v : Vcode.t) : allocation =
  let iv = Vcode.intervals v in
  let n = Array.length iv in
  let homes = Array.make n None in
  (* Intervals sorted by increasing start position. *)
  let order =
    List.sort
      (fun a b ->
        match (iv.(a), iv.(b)) with
        | Some (s1, _), Some (s2, _) -> compare (s1, a) (s2, b)
        | _ -> assert false)
      (List.filteri (fun _ x -> iv.(x) <> None) (List.init n Fun.id))
  in
  (* Register timelines: vregs currently packed into each register. *)
  let timelines = Hashtbl.create 8 in
  List.iter (fun r -> Hashtbl.replace timelines r []) Isa.allocatable;
  let spill_count = ref 0 in
  let fresh_slot () =
    let s = !spill_count in
    incr spill_count;
    s
  in
  (* Pass 1: linear scan with an explicit active set. *)
  let active = ref [] (* (vreg, end, reg) *) in
  let expire start =
    active := List.filter (fun (_, e, _) -> e >= start) !active
  in
  let free_reg () =
    let used = List.map (fun (_, _, r) -> r) !active in
    List.find_opt (fun r -> not (List.mem r used)) Isa.allocatable
  in
  List.iter
    (fun vreg ->
      match iv.(vreg) with
      | None -> ()
      | Some (start, stop) -> (
          expire start;
          match free_reg () with
          | Some r ->
              homes.(vreg) <- Some (Reg r);
              Hashtbl.replace timelines r (vreg :: Hashtbl.find timelines r);
              active := (vreg, stop, r) :: !active
          | None ->
              (* Evict the active interval that ends furthest away if it
                 outlives the current one; otherwise spill the current. *)
              let (victim, vend, vr), rest =
                match
                  List.sort (fun (_, e1, _) (_, e2, _) -> compare e2 e1) !active
                with
                | x :: rest -> (x, rest)
                | [] -> assert false
              in
              if vend > stop then begin
                homes.(victim) <- Some (Stack (fresh_slot ()));
                Hashtbl.replace timelines vr
                  (List.filter (( <> ) victim) (Hashtbl.find timelines vr));
                homes.(vreg) <- Some (Reg vr);
                Hashtbl.replace timelines vr (vreg :: Hashtbl.find timelines vr);
                active := (vreg, stop, vr) :: rest
              end
              else begin
                homes.(vreg) <- Some (Stack (fresh_slot ()));
                active := (victim, vend, vr) :: rest
              end))
    order;
  (* Pass 2 — the second chance: try to pack each spilled interval into a
     register timeline gap. *)
  let spilled_final = ref 0 in
  List.iter
    (fun vreg ->
      match (homes.(vreg), iv.(vreg)) with
      | Some (Stack _), Some interval ->
          let fits r =
            List.for_all
              (fun other ->
                match iv.(other) with
                | Some o -> not (overlaps interval o)
                | None -> true)
              (Hashtbl.find timelines r)
          in
          (match List.find_opt fits Isa.allocatable with
          | Some r ->
              homes.(vreg) <- Some (Reg r);
              Hashtbl.replace timelines r (vreg :: Hashtbl.find timelines r)
          | None -> incr spilled_final)
      | _ -> ())
    order;
  { homes; spill_slots = !spill_count; spilled = !spilled_final }

let pp_home ppf = function
  | Reg r -> Fmt.pf ppf "r%d" r
  | Stack s -> Fmt.pf ppf "stack[%d]" s
