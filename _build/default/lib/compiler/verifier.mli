(** Static verifier for compiled scheduler programs, modeled on the
    eBPF verifier's role: code is checked before it may be installed.

    Checks: jump targets in bounds, no fall-through off the end, stack
    accesses within the frame, registers never read before written
    (forward dataflow over the CFG; r1–r5 are treated as clobbered after
    every helper call, as in eBPF), and helper argument registers
    initialized. Termination is structural: every loop the compiler
    emits is bounded by a queue length or the subflow count. *)

type error = { pc : int; message : string }

val verify : Isa.instr array -> error list
(** Empty list = accepted. *)

val pp_error : Format.formatter -> error -> unit
