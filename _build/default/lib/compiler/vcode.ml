(** Virtual code: the compiler's internal three-address form over an
    unbounded set of virtual registers, produced by {!Codegen} and turned
    into final {!Isa} code by {!Regalloc} + {!Emit}.

    Control flow uses symbolic labels. Loops are recorded as position
    spans so the liveness analysis can extend intervals of values that
    are live around a back edge. *)

type vreg = int

type label = int

type vinstr =
  | Vmovi of vreg * int
  | Vmov of vreg * vreg
  | Valu of Isa.aluop * vreg * vreg * vreg  (** dst := a op b *)
  | Valui of Isa.aluop * vreg * vreg * int  (** dst := a op imm *)
  | Vlabel of label
  | Vjmp of label
  | Vjcc of Isa.cond * vreg * vreg * label
  | Vjcci of Isa.cond * vreg * int * label
  | Vcall of Isa.helper * vreg list * vreg option
  | Vexit

type t = {
  code : vinstr array;
  num_vregs : int;
  loops : (int * int) list;  (** [start, stop)] position spans of loops *)
}

(** Emission buffer used by the code generator. *)
type builder = {
  mutable buf : vinstr list;  (** reversed *)
  mutable next_vreg : int;
  mutable next_label : int;
  mutable pos : int;
  mutable loop_spans : (int * int) list;
}

let create_builder ~reserved_vregs =
  { buf = []; next_vreg = reserved_vregs; next_label = 0; pos = 0; loop_spans = [] }

let fresh_vreg b =
  let v = b.next_vreg in
  b.next_vreg <- v + 1;
  v

let fresh_label b =
  let l = b.next_label in
  b.next_label <- l + 1;
  l

let emit b i =
  b.buf <- i :: b.buf;
  b.pos <- b.pos + 1

let here b = b.pos

(** Record that positions [start, stop) form a loop body (including the
    loop header and back edge). *)
let record_loop b ~start ~stop = b.loop_spans <- (start, stop) :: b.loop_spans

let finish b ~num_vregs =
  { code = Array.of_list (List.rev b.buf); num_vregs; loops = b.loop_spans }

let defs_uses = function
  | Vmovi (d, _) -> ([ d ], [])
  | Vmov (d, s) -> ([ d ], [ s ])
  | Valu (_, d, a, bb) -> ([ d ], [ a; bb ])
  | Valui (_, d, a, _) -> ([ d ], [ a ])
  | Vlabel _ | Vjmp _ | Vexit -> ([], [])
  | Vjcc (_, a, bb, _) -> ([], [ a; bb ])
  | Vjcci (_, a, _, _) -> ([], [ a ])
  | Vcall (_, args, ret) ->
      ((match ret with Some d -> [ d ] | None -> []), args)

(** Live intervals: for each vreg, the [ (first, last) ] positions at which
    it occurs, with last extended to cover any loop whose span it
    intersects from before (a value defined before a loop and used inside
    must survive the whole loop). Returns an array indexed by vreg;
    entries are [None] for vregs that never occur. *)
let intervals (t : t) : (int * int) option array =
  let iv = Array.make t.num_vregs None in
  Array.iteri
    (fun pos instr ->
      let defs, uses = defs_uses instr in
      List.iter
        (fun v ->
          match iv.(v) with
          | None -> iv.(v) <- Some (pos, pos)
          | Some (s, e) -> iv.(v) <- Some (min s pos, max e pos))
        (defs @ uses))
    t.code;
  (* Extend across loops to a fixpoint: if an interval starts before a
     loop and ends inside it, the value crosses the back edge, so it must
     live until the loop's end. *)
  let changed = ref true in
  while !changed do
    changed := false;
    Array.iteri
      (fun v entry ->
        match entry with
        | None -> ()
        | Some (s, e) ->
            List.iter
              (fun (ls, le) ->
                if s < ls && e >= ls && e < le then begin
                  iv.(v) <- Some (s, le);
                  changed := true
                end)
              t.loops)
      iv
  done;
  iv

let pp_vinstr ppf = function
  | Vmovi (d, n) -> Fmt.pf ppf "v%d := %d" d n
  | Vmov (d, s) -> Fmt.pf ppf "v%d := v%d" d s
  | Valu (op, d, a, b) ->
      Fmt.pf ppf "v%d := v%d %s v%d" d a (Isa.aluop_name op) b
  | Valui (op, d, a, n) -> Fmt.pf ppf "v%d := v%d %s %d" d a (Isa.aluop_name op) n
  | Vlabel l -> Fmt.pf ppf "L%d:" l
  | Vjmp l -> Fmt.pf ppf "jmp L%d" l
  | Vjcc (c, a, b, l) ->
      Fmt.pf ppf "%s v%d, v%d -> L%d" (Isa.cond_name c) a b l
  | Vjcci (c, a, n, l) -> Fmt.pf ppf "%s v%d, %d -> L%d" (Isa.cond_name c) a n l
  | Vcall (h, args, ret) ->
      Fmt.pf ppf "%scall %s(%a)"
        (match ret with Some d -> Fmt.str "v%d := " d | None -> "")
        (Isa.helper_name h)
        Fmt.(list ~sep:(any ", ") (fun ppf v -> Fmt.pf ppf "v%d" v))
        args
  | Vexit -> Fmt.string ppf "exit"
