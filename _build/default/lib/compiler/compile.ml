(** Compiler driver: typed program -> verified bytecode, plus engine
    installation into the runtime's scheduler registry.

    Pipeline: {!Codegen.generate} (lowering + primitive fusion) ->
    {!Regalloc.allocate} (second-chance binpacking) -> {!Emit.emit}
    (calling-convention lowering, label resolution) -> {!Verifier.verify}.
    A program that fails verification is never installed — mirroring the
    kernel refusing to load an eBPF object. *)

exception Rejected of string

type stats = {
  vinstrs : int;  (** virtual instructions before lowering *)
  instrs : int;  (** final instruction count *)
  spill_slots : int;
  spilled_vregs : int;
}

let compile_with_stats ?subflow_count (p : Progmp_lang.Tast.program) :
    Vm.prog * stats =
  let vcode = Codegen.generate ?subflow_count p in
  let alloc = Regalloc.allocate vcode in
  let code = Emit.emit vcode alloc in
  (match Verifier.verify code with
  | [] -> ()
  | errors ->
      raise
        (Rejected
           (Fmt.str "verifier rejected the program:@\n%a"
              Fmt.(list ~sep:(any "@\n") Verifier.pp_error)
              errors)));
  ( (match subflow_count with
    | Some k -> Vm.make_prog ~specialized_for:k ~spill_slots:alloc.Regalloc.spill_slots code
    | None -> Vm.make_prog ~spill_slots:alloc.Regalloc.spill_slots code),
    {
      vinstrs = Array.length vcode.Vcode.code;
      instrs = Array.length code;
      spill_slots = alloc.Regalloc.spill_slots;
      spilled_vregs = alloc.Regalloc.spilled;
    } )

let compile ?subflow_count p = fst (compile_with_stats ?subflow_count p)

(** Build an execution engine from a compiled program. When the program
    was specialized for a constant subflow count (§4.1, "constant subflow
    number" optimization), executions with a different count fall back to
    [fallback] (normally the generic compiled or interpreted version),
    like the paper's JIT returning to the original version. *)
let engine ?fallback (prog : Vm.prog) : Progmp_runtime.Env.t -> unit =
 fun env ->
  match prog.Vm.specialized_for with
  | Some k when Array.length env.Progmp_runtime.Env.subflows <> k -> (
      match fallback with
      | Some f -> f env
      | None -> Vm.run prog env)
  | Some _ | None -> Vm.run prog env

(** Compile [sched]'s program and install the VM engine on it, so that
    subsequent {!Progmp_runtime.Scheduler.execute} calls run bytecode. *)
let install ?subflow_count (sched : Progmp_runtime.Scheduler.t) =
  let interp = sched.Progmp_runtime.Scheduler.run in
  let prog = compile ?subflow_count sched.Progmp_runtime.Scheduler.program in
  Progmp_runtime.Scheduler.set_engine sched ~name:"ebpf-vm"
    (engine ~fallback:interp prog);
  prog
