(** Code generation: typed IR -> virtual three-address code.

    Declarative operations are lowered to explicit loops with the filter
    predicates inlined into their consumers (the paper's primitive
    fusion): subflow lists become bitmasks over the snapshot, queue
    views become scan loops over the base queue. Program variables
    occupy virtual registers [0 .. num_slots-1]; booleans are 0/1 and
    NULL is handle 0. *)

val generate : ?subflow_count:int -> Progmp_lang.Tast.program -> Vcode.t
(** Translate a typed program. With [subflow_count] the code is
    specialized for that constant number of subflows; the caller must
    guard execution on the actual count. *)
