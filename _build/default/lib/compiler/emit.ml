(** Final lowering: virtual code + register allocation -> {!Isa} code.

    Virtual registers live in their allocated homes (a callee-saved
    register or a stack slot); each virtual instruction is lowered to a
    short sequence using [r0]/[r2] as scratch and [r1]-[r5] for helper
    arguments, exactly the eBPF calling convention. Labels are resolved
    to absolute program counters in a patch pass. *)

exception Error of string

type buffer = {
  mutable out : Isa.instr list;  (** reversed *)
  mutable n : int;
  label_pos : (int, int) Hashtbl.t;
  mutable patches : (int * int) list;  (** (instruction index, label) *)
}

let push buf i =
  buf.out <- i :: buf.out;
  buf.n <- buf.n + 1

let home (alloc : Regalloc.allocation) v =
  match alloc.Regalloc.homes.(v) with
  | Some h -> h
  | None -> raise (Error (Fmt.str "vreg v%d has no home" v))

(* Materialize [v] in a register: its own home register, or [scratch]
   after a stack load. *)
let read buf alloc v ~scratch =
  match home alloc v with
  | Regalloc.Reg r -> r
  | Regalloc.Stack s ->
      push buf (Isa.Ldx (scratch, s));
      scratch

(* Store the value held in physical register [from] into [v]'s home. *)
let write buf alloc v ~from =
  match home alloc v with
  | Regalloc.Reg r -> if r <> from then push buf (Isa.Mov (r, from))
  | Regalloc.Stack s -> push buf (Isa.Stx (s, from))

let jump_placeholder = -1

let lower_instr buf alloc (vi : Vcode.vinstr) =
  match vi with
  | Vcode.Vlabel l ->
      if Hashtbl.mem buf.label_pos l then
        raise (Error (Fmt.str "duplicate label L%d" l));
      Hashtbl.replace buf.label_pos l buf.n
  | Vcode.Vmovi (d, n) -> (
      match home alloc d with
      | Regalloc.Reg r -> push buf (Isa.Movi (r, n))
      | Regalloc.Stack s ->
          push buf (Isa.Movi (Isa.scratch0, n));
          push buf (Isa.Stx (s, Isa.scratch0)))
  | Vcode.Vmov (d, s) ->
      let rs = read buf alloc s ~scratch:Isa.scratch0 in
      write buf alloc d ~from:rs
  | Vcode.Valu (op, d, a, b) ->
      (* r0 := a; r0 := r0 op b; d := r0.  [b] may live in a register that
         is also [d]'s home; computing in r0 makes that safe. *)
      let ra = read buf alloc a ~scratch:Isa.scratch0 in
      if ra <> Isa.scratch0 then push buf (Isa.Mov (Isa.scratch0, ra));
      let rb = read buf alloc b ~scratch:Isa.scratch1 in
      push buf (Isa.Alu (op, Isa.scratch0, rb));
      write buf alloc d ~from:Isa.scratch0
  | Vcode.Valui (op, d, a, imm) ->
      let ra = read buf alloc a ~scratch:Isa.scratch0 in
      if ra <> Isa.scratch0 then push buf (Isa.Mov (Isa.scratch0, ra));
      push buf (Isa.Alui (op, Isa.scratch0, imm));
      write buf alloc d ~from:Isa.scratch0
  | Vcode.Vjmp l ->
      buf.patches <- (buf.n, l) :: buf.patches;
      push buf (Isa.Jmp jump_placeholder)
  | Vcode.Vjcc (c, a, b, l) ->
      let ra = read buf alloc a ~scratch:Isa.scratch0 in
      let rb = read buf alloc b ~scratch:Isa.scratch1 in
      buf.patches <- (buf.n, l) :: buf.patches;
      push buf (Isa.Jcc (c, ra, rb, jump_placeholder))
  | Vcode.Vjcci (c, a, imm, l) ->
      let ra = read buf alloc a ~scratch:Isa.scratch0 in
      buf.patches <- (buf.n, l) :: buf.patches;
      push buf (Isa.Jcci (c, ra, imm, jump_placeholder))
  | Vcode.Vcall (h, args, ret) ->
      if List.length args <> Isa.helper_arity h then
        raise
          (Error
             (Fmt.str "helper %s expects %d arguments" (Isa.helper_name h)
                (Isa.helper_arity h)));
      List.iteri
        (fun i v ->
          let dst = i + 1 in
          match home alloc v with
          | Regalloc.Reg r -> push buf (Isa.Mov (dst, r))
          | Regalloc.Stack s -> push buf (Isa.Ldx (dst, s)))
        args;
      push buf (Isa.Call h);
      (match ret with
      | Some d -> write buf alloc d ~from:Isa.scratch0
      | None -> ())
  | Vcode.Vexit -> push buf Isa.Exit

(** Lower allocated virtual code to a final instruction array. *)
let emit (v : Vcode.t) (alloc : Regalloc.allocation) : Isa.instr array =
  let buf =
    { out = []; n = 0; label_pos = Hashtbl.create 32; patches = [] }
  in
  Array.iter (lower_instr buf alloc) v.Vcode.code;
  let code = Array.of_list (List.rev buf.out) in
  List.iter
    (fun (pos, l) ->
      let target =
        match Hashtbl.find_opt buf.label_pos l with
        | Some t -> t
        | None -> raise (Error (Fmt.str "undefined label L%d" l))
      in
      code.(pos) <-
        (match code.(pos) with
        | Isa.Jmp _ -> Isa.Jmp target
        | Isa.Jcc (c, a, b, _) -> Isa.Jcc (c, a, b, target)
        | Isa.Jcci (c, a, i, _) -> Isa.Jcci (c, a, i, target)
        | _ -> raise (Error "patch target is not a jump")))
    buf.patches;
  code
