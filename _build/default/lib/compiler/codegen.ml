(** Code generation: typed IR -> virtual three-address code.

    Declarative operations are lowered to explicit loops, fusing filter
    stacks into their consumers — this is the "combines scheduler
    primitives, such as FILTER, reducing the number of loops and function
    calls" step of the paper's eBPF compilation (§4.1):

    - a subflow list becomes a {e bitmask} over the subflow snapshot
      (bit i = subflow index i, handle i+1), so [FILTER] chains compose
      with bitwise AND semantics and never materialize lists;
    - queue views become scan loops over the base queue with the filter
      predicates inlined; [FILTER(..).MIN(..)] is one loop;
    - [POP] on a filtered view removes the first matching packet in
      place via the [q_remove] helper.

    Program variables ({!Tast} slots) occupy virtual registers
    [0 .. num_slots-1]; all other values get fresh virtual registers.
    Booleans are 0/1; NULL is handle 0. *)

open Progmp_lang
module V = Vcode

type ctx = {
  b : V.builder;
  subflow_count : int option;
      (** when set, specialize for a constant number of subflows *)
}

let emit ctx i = V.emit ctx.b i

let fresh ctx = V.fresh_vreg ctx.b

let label ctx = V.fresh_label ctx.b

let const ctx n =
  let v = fresh ctx in
  emit ctx (V.Vmovi (v, n));
  v

let call ctx h args ~ret =
  let r = if ret then Some (fresh ctx) else None in
  emit ctx (V.Vcall (h, args, r));
  match r with Some v -> v | None -> -1

(* Number of subflows in the snapshot: a helper call, or a constant under
   specialization. *)
let sbf_count ctx =
  match ctx.subflow_count with
  | Some k -> const ctx k
  | None -> call ctx Isa.H_sbf_count [] ~ret:true

(* dst := (a cond b) as 0/1 *)
let set_on_cond ctx cond a b =
  let dst = fresh ctx in
  let l = label ctx in
  emit ctx (V.Vmovi (dst, 1));
  emit ctx (V.Vjcc (cond, a, b, l));
  emit ctx (V.Vmovi (dst, 0));
  emit ctx (V.Vlabel l);
  dst

let set_on_condi ctx cond a imm =
  let dst = fresh ctx in
  let l = label ctx in
  emit ctx (V.Vmovi (dst, 1));
  emit ctx (V.Vjcci (cond, a, imm, l));
  emit ctx (V.Vmovi (dst, 0));
  emit ctx (V.Vlabel l);
  dst

(* Iterate over the set bits of a subflow mask. [body] receives the
   0-based index vreg and the subflow handle vreg and the label that
   breaks the loop. *)
let for_each_sbf ctx ~mask ~body =
  let vi = fresh ctx and vn = sbf_count ctx in
  let l_head = label ctx and l_cont = label ctx and l_end = label ctx in
  emit ctx (V.Vmovi (vi, 0));
  let start = V.here ctx.b in
  emit ctx (V.Vlabel l_head);
  emit ctx (V.Vjcc (Isa.Jge, vi, vn, l_end));
  (* bit test: (mask >> vi) land 1 *)
  let vt = fresh ctx in
  emit ctx (V.Valu (Isa.Rsh, vt, mask, vi));
  emit ctx (V.Valui (Isa.And, vt, vt, 1));
  emit ctx (V.Vjcci (Isa.Jeq, vt, 0, l_cont));
  let vh = fresh ctx in
  emit ctx (V.Valui (Isa.Add, vh, vi, 1));
  body ~idx:vi ~handle:vh ~l_end;
  emit ctx (V.Vlabel l_cont);
  emit ctx (V.Valui (Isa.Add, vi, vi, 1));
  emit ctx (V.Vjmp l_head);
  emit ctx (V.Vlabel l_end);
  V.record_loop ctx.b ~start ~stop:(V.here ctx.b)

let rec gen_expr ctx (e : Tast.expr) : V.vreg =
  match e.Tast.desc with
  | Tast.Int_lit n -> const ctx n
  | Tast.Bool_lit b -> const ctx (if b then 1 else 0)
  | Tast.Null _ -> const ctx 0
  | Tast.Register i ->
      let vi = const ctx i in
      call ctx Isa.H_get_reg [ vi ] ~ret:true
  | Tast.Slot i ->
      (* copy out of the slot vreg so later slot writes (lambda reuse)
         cannot alias the value *)
      let v = fresh ctx in
      emit ctx (V.Vmov (v, i));
      v
  | Tast.Not a ->
      let va = gen_expr ctx a in
      let v = fresh ctx in
      emit ctx (V.Valui (Isa.Xor, v, va, 1));
      v
  | Tast.Neg a ->
      let va = gen_expr ctx a in
      let v = fresh ctx in
      emit ctx (V.Valui (Isa.Mul, v, va, -1));
      v
  | Tast.Binop (op, a, b) -> gen_binop ctx op a b
  | Tast.Subflows ->
      (* mask = (1 << count) - 1 *)
      let vn = sbf_count ctx in
      let vone = const ctx 1 in
      let v = fresh ctx in
      emit ctx (V.Valu (Isa.Lsh, v, vone, vn));
      emit ctx (V.Valui (Isa.Sub, v, v, 1));
      v
  | Tast.Sbf_filter (l, lam) ->
      let mask = gen_expr ctx l in
      let res = fresh ctx in
      emit ctx (V.Vmovi (res, 0));
      for_each_sbf ctx ~mask ~body:(fun ~idx ~handle ~l_end:_ ->
          emit ctx (V.Vmov (lam.Tast.param, handle));
          let vp = gen_expr ctx lam.Tast.body in
          let l_skip = label ctx in
          emit ctx (V.Vjcci (Isa.Jeq, vp, 0, l_skip));
          let vbit = fresh ctx in
          let vone = const ctx 1 in
          emit ctx (V.Valu (Isa.Lsh, vbit, vone, idx));
          emit ctx (V.Valu (Isa.Or, res, res, vbit));
          emit ctx (V.Vlabel l_skip));
      res
  | Tast.Sbf_min (l, lam) -> gen_sbf_select ctx ~is_min:true l lam
  | Tast.Sbf_max (l, lam) -> gen_sbf_select ctx ~is_min:false l lam
  | Tast.Sbf_sum (l, lam) ->
      let mask = gen_expr ctx l in
      let res = fresh ctx in
      emit ctx (V.Vmovi (res, 0));
      for_each_sbf ctx ~mask ~body:(fun ~idx:_ ~handle ~l_end:_ ->
          emit ctx (V.Vmov (lam.Tast.param, handle));
          let vk = gen_expr ctx lam.Tast.body in
          emit ctx (V.Valu (Isa.Add, res, res, vk)));
      res
  | Tast.Sbf_get (l, idx) ->
      let mask = gen_expr ctx l in
      let vidx = gen_expr ctx idx in
      let res = fresh ctx and seen = fresh ctx in
      emit ctx (V.Vmovi (res, 0));
      emit ctx (V.Vmovi (seen, 0));
      for_each_sbf ctx ~mask ~body:(fun ~idx:_ ~handle ~l_end ->
          let l_skip = label ctx in
          emit ctx (V.Vjcc (Isa.Jne, seen, vidx, l_skip));
          emit ctx (V.Vmov (res, handle));
          emit ctx (V.Vjmp l_end);
          emit ctx (V.Vlabel l_skip);
          emit ctx (V.Valui (Isa.Add, seen, seen, 1)));
      res
  | Tast.Sbf_count l ->
      let mask = gen_expr ctx l in
      let res = fresh ctx in
      emit ctx (V.Vmovi (res, 0));
      for_each_sbf ctx ~mask ~body:(fun ~idx:_ ~handle:_ ~l_end:_ ->
          emit ctx (V.Valui (Isa.Add, res, res, 1)));
      res
  | Tast.Sbf_empty l ->
      let mask = gen_expr ctx l in
      set_on_condi ctx Isa.Jeq mask 0
  | Tast.Sbf_prop (s, prop) ->
      let vs = gen_expr ctx s in
      let vc = const ctx (Isa.sbf_prop_code prop) in
      call ctx Isa.H_sbf_prop [ vs; vc ] ~ret:true
  | Tast.Has_window_for (s, p) ->
      let vs = gen_expr ctx s in
      let vp = gen_expr ctx p in
      call ctx Isa.H_has_window [ vs; vp ] ~ret:true
  | Tast.Q_top view ->
      let res = fresh ctx in
      emit ctx (V.Vmovi (res, 0));
      gen_queue_scan ctx view ~body:(fun ~idx:_ ~pkt ~l_end ->
          emit ctx (V.Vmov (res, pkt));
          emit ctx (V.Vjmp l_end));
      res
  | Tast.Q_pop view ->
      let res = fresh ctx in
      emit ctx (V.Vmovi (res, 0));
      let qc = Isa.queue_code view.Tast.base in
      gen_queue_scan ctx view ~body:(fun ~idx ~pkt:_ ~l_end ->
          let vq = const ctx qc in
          let r = call ctx Isa.H_q_remove [ vq; idx ] ~ret:true in
          emit ctx (V.Vmov (res, r));
          emit ctx (V.Vjmp l_end));
      res
  | Tast.Q_min (view, lam) -> gen_q_select ctx ~is_min:true view lam
  | Tast.Q_max (view, lam) -> gen_q_select ctx ~is_min:false view lam
  | Tast.Q_count view ->
      let res = fresh ctx in
      emit ctx (V.Vmovi (res, 0));
      gen_queue_scan ctx view ~body:(fun ~idx:_ ~pkt:_ ~l_end:_ ->
          emit ctx (V.Valui (Isa.Add, res, res, 1)));
      res
  | Tast.Q_empty view ->
      let res = fresh ctx in
      emit ctx (V.Vmovi (res, 1));
      gen_queue_scan ctx view ~body:(fun ~idx:_ ~pkt:_ ~l_end ->
          emit ctx (V.Vmovi (res, 0));
          emit ctx (V.Vjmp l_end));
      res
  | Tast.Pkt_prop (p, prop) ->
      let vp = gen_expr ctx p in
      let vc = const ctx (Isa.pkt_prop_code prop) in
      call ctx Isa.H_pkt_prop [ vp; vc ] ~ret:true
  | Tast.Sent_on (p, s) ->
      let vp = gen_expr ctx p in
      let vs = gen_expr ctx s in
      call ctx Isa.H_sent_on [ vp; vs ] ~ret:true

and gen_binop ctx op a b =
  match op with
  | Tast.And ->
      let res = fresh ctx in
      let l_end = label ctx in
      let va = gen_expr ctx a in
      emit ctx (V.Vmovi (res, 0));
      emit ctx (V.Vjcci (Isa.Jeq, va, 0, l_end));
      let vb = gen_expr ctx b in
      emit ctx (V.Vmov (res, vb));
      emit ctx (V.Vlabel l_end);
      res
  | Tast.Or ->
      let res = fresh ctx in
      let l_end = label ctx in
      let va = gen_expr ctx a in
      emit ctx (V.Vmovi (res, 1));
      emit ctx (V.Vjcci (Isa.Jne, va, 0, l_end));
      let vb = gen_expr ctx b in
      emit ctx (V.Vmov (res, vb));
      emit ctx (V.Vlabel l_end);
      res
  | Tast.Add | Tast.Sub | Tast.Mul | Tast.Div | Tast.Mod ->
      let va = gen_expr ctx a in
      let vb = gen_expr ctx b in
      let aluop =
        match op with
        | Tast.Add -> Isa.Add
        | Tast.Sub -> Isa.Sub
        | Tast.Mul -> Isa.Mul
        | Tast.Div -> Isa.Div
        | _ -> Isa.Mod
      in
      let res = fresh ctx in
      emit ctx (V.Valu (aluop, res, va, vb));
      res
  | Tast.Eq | Tast.Neq | Tast.Lt | Tast.Le | Tast.Gt | Tast.Ge ->
      let va = gen_expr ctx a in
      let vb = gen_expr ctx b in
      let cond =
        match op with
        | Tast.Eq -> Isa.Jeq
        | Tast.Neq -> Isa.Jne
        | Tast.Lt -> Isa.Jlt
        | Tast.Le -> Isa.Jle
        | Tast.Gt -> Isa.Jgt
        | _ -> Isa.Jge
      in
      set_on_cond ctx cond va vb

and gen_sbf_select ctx ~is_min l (lam : Tast.lambda) =
  let mask = gen_expr ctx l in
  let best = fresh ctx and bestk = fresh ctx and found = fresh ctx in
  emit ctx (V.Vmovi (best, 0));
  emit ctx (V.Vmovi (bestk, 0));
  emit ctx (V.Vmovi (found, 0));
  for_each_sbf ctx ~mask ~body:(fun ~idx:_ ~handle ~l_end:_ ->
      emit ctx (V.Vmov (lam.Tast.param, handle));
      let vk = gen_expr ctx lam.Tast.body in
      let l_take = label ctx and l_skip = label ctx in
      emit ctx (V.Vjcci (Isa.Jeq, found, 0, l_take));
      emit ctx
        (V.Vjcc ((if is_min then Isa.Jge else Isa.Jle), vk, bestk, l_skip));
      emit ctx (V.Vlabel l_take);
      emit ctx (V.Vmov (best, handle));
      emit ctx (V.Vmov (bestk, vk));
      emit ctx (V.Vmovi (found, 1));
      emit ctx (V.Vlabel l_skip));
  best

(* Scan the base queue of [view] front to back; for each packet passing
   the inlined filter stack, run [body]. [body] receives the queue index,
   the packet handle and the scan's break label. *)
and gen_queue_scan ctx (view : Tast.queue_view) ~body =
  let qc = Isa.queue_code view.Tast.base in
  let vi = fresh ctx in
  let l_head = label ctx and l_cont = label ctx and l_end = label ctx in
  emit ctx (V.Vmovi (vi, 0));
  let start = V.here ctx.b in
  emit ctx (V.Vlabel l_head);
  let vq = const ctx qc in
  let vp = call ctx Isa.H_q_nth [ vq; vi ] ~ret:true in
  emit ctx (V.Vjcci (Isa.Jeq, vp, 0, l_end));
  List.iter
    (fun (lam : Tast.lambda) ->
      emit ctx (V.Vmov (lam.Tast.param, vp));
      let vc = gen_expr ctx lam.Tast.body in
      emit ctx (V.Vjcci (Isa.Jeq, vc, 0, l_cont)))
    view.Tast.filters;
  body ~idx:vi ~pkt:vp ~l_end;
  emit ctx (V.Vlabel l_cont);
  emit ctx (V.Valui (Isa.Add, vi, vi, 1));
  emit ctx (V.Vjmp l_head);
  emit ctx (V.Vlabel l_end);
  V.record_loop ctx.b ~start ~stop:(V.here ctx.b)

and gen_q_select ctx ~is_min (view : Tast.queue_view) (lam : Tast.lambda) =
  let best = fresh ctx and bestk = fresh ctx and found = fresh ctx in
  emit ctx (V.Vmovi (best, 0));
  emit ctx (V.Vmovi (bestk, 0));
  emit ctx (V.Vmovi (found, 0));
  gen_queue_scan ctx view ~body:(fun ~idx:_ ~pkt ~l_end:_ ->
      emit ctx (V.Vmov (lam.Tast.param, pkt));
      let vk = gen_expr ctx lam.Tast.body in
      let l_take = label ctx and l_skip = label ctx in
      emit ctx (V.Vjcci (Isa.Jeq, found, 0, l_take));
      emit ctx
        (V.Vjcc ((if is_min then Isa.Jge else Isa.Jle), vk, bestk, l_skip));
      emit ctx (V.Vlabel l_take);
      emit ctx (V.Vmov (best, pkt));
      emit ctx (V.Vmov (bestk, vk));
      emit ctx (V.Vmovi (found, 1));
      emit ctx (V.Vlabel l_skip));
  best

let rec gen_stmt ctx (s : Tast.stmt) =
  match s with
  | Tast.Var_decl (slot, e) ->
      let v = gen_expr ctx e in
      emit ctx (V.Vmov (slot, v))
  | Tast.If (cond, then_, else_) ->
      let vc = gen_expr ctx cond in
      let l_else = label ctx and l_end = label ctx in
      emit ctx (V.Vjcci (Isa.Jeq, vc, 0, l_else));
      gen_block ctx then_;
      emit ctx (V.Vjmp l_end);
      emit ctx (V.Vlabel l_else);
      gen_block ctx else_;
      emit ctx (V.Vlabel l_end)
  | Tast.Foreach (slot, src, body) ->
      let mask = gen_expr ctx src in
      for_each_sbf ctx ~mask ~body:(fun ~idx:_ ~handle ~l_end:_ ->
          emit ctx (V.Vmov (slot, handle));
          gen_block ctx body)
  | Tast.Set_register (r, e) ->
      let v = gen_expr ctx e in
      let vr = const ctx r in
      ignore (call ctx Isa.H_set_reg [ vr; v ] ~ret:false)
  | Tast.Push (s, p) ->
      let vs = gen_expr ctx s in
      let vp = gen_expr ctx p in
      ignore (call ctx Isa.H_push [ vs; vp ] ~ret:false)
  | Tast.Drop e ->
      let vp = gen_expr ctx e in
      ignore (call ctx Isa.H_drop [ vp ] ~ret:false)
  | Tast.Return -> emit ctx V.Vexit

and gen_block ctx b = List.iter (gen_stmt ctx) b

(** Translate a typed program to virtual code. When [subflow_count] is
    given, the code is specialized for that constant number of subflows
    (the caller must guard execution on the actual count). *)
let generate ?subflow_count (p : Tast.program) : V.t =
  let b = V.create_builder ~reserved_vregs:(max 1 p.Tast.num_slots) in
  let ctx = { b; subflow_count } in
  (* Slot vregs must be defined before use even if the program reads a
     variable that a conditional skipped; zero-init them. *)
  for slot = 0 to p.Tast.num_slots - 1 do
    emit ctx (V.Vmovi (slot, 0))
  done;
  gen_block ctx p.Tast.body;
  emit ctx V.Vexit;
  V.finish b ~num_vregs:b.V.next_vreg
