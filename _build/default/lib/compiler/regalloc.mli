(** Register allocation: linear scan with second-chance binpacking
    (Traub, Holloway, Smith, PLDI'98 — the algorithm the paper's
    in-kernel cross-compiler uses).

    Pass 1 is a classic linear scan with a spill-furthest-end heuristic;
    pass 2 (the second chance) re-offers every spilled interval to each
    register's timeline and packs it into any gap wide enough. Live
    ranges are not split: a virtual register has one home for its whole
    lifetime. *)

type home =
  | Reg of Isa.reg  (** one of the callee-saved registers r6..r9 *)
  | Stack of int  (** word slot in the frame *)

type allocation = {
  homes : home option array;  (** indexed by vreg; [None] = never used *)
  spill_slots : int;  (** stack slots consumed by spills *)
  spilled : int;  (** vregs living on the stack after the second chance *)
}

val allocate : Vcode.t -> allocation
(** Invariant (property-tested): no two virtual registers with
    overlapping live intervals share a physical register, and every used
    vreg has a home. *)

val pp_home : Format.formatter -> home -> unit
