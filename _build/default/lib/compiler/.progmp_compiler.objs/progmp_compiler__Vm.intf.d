lib/compiler/vm.mli: Hashtbl Isa Progmp_runtime
