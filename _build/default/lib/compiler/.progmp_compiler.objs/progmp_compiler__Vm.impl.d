lib/compiler/vm.ml: Array Env Fmt Hashtbl Isa Packet Pqueue Progmp_lang Progmp_runtime Subflow_view
