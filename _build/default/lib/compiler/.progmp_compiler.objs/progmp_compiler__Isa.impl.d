lib/compiler/isa.ml: Progmp_lang
