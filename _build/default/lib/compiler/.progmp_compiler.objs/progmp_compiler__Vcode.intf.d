lib/compiler/vcode.mli: Format Isa
