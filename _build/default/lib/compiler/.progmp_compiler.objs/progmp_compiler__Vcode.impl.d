lib/compiler/vcode.ml: Array Fmt Isa List
