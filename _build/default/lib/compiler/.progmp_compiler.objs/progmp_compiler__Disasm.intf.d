lib/compiler/disasm.mli: Format Isa
