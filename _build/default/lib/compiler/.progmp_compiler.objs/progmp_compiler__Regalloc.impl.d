lib/compiler/regalloc.ml: Array Fmt Fun Hashtbl Isa List Vcode
