lib/compiler/regalloc.mli: Format Isa Vcode
