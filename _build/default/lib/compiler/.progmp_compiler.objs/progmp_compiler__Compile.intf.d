lib/compiler/compile.mli: Progmp_lang Progmp_runtime Vm
