lib/compiler/codegen.mli: Progmp_lang Vcode
