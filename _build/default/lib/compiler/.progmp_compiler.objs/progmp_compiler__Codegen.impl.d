lib/compiler/codegen.ml: Isa List Progmp_lang Tast Vcode
