lib/compiler/isa.mli: Progmp_lang
