lib/compiler/compile.ml: Array Codegen Emit Fmt Progmp_lang Progmp_runtime Regalloc Vcode Verifier Vm
