lib/compiler/emit.mli: Isa Regalloc Vcode
