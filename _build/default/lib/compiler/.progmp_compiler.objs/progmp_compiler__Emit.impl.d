lib/compiler/emit.ml: Array Fmt Hashtbl Isa List Regalloc Vcode
