lib/compiler/verifier.ml: Array Fmt Isa List Queue
