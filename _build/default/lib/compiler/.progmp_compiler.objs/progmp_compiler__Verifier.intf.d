lib/compiler/verifier.mli: Format Isa
