lib/compiler/disasm.ml: Array Fmt Isa
