(** Final lowering: allocated virtual code -> {!Isa} instructions.

    Virtual registers live in their allocated homes (callee-saved
    register or stack slot); each virtual instruction lowers to a short
    sequence using r0/r2 as scratch and r1–r5 for helper arguments — the
    eBPF calling convention. Labels resolve to absolute program
    counters in a patch pass. *)

exception Error of string
(** Internal consistency violation (homeless vreg, duplicate or
    undefined label, bad helper arity) — a compiler bug surfaced before
    verification. *)

val emit : Vcode.t -> Regalloc.allocation -> Isa.instr array
