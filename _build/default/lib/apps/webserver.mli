(** MPTCP-aware web server (§5.5) — the OCaml counterpart of the
    paper's patched Nghttp2: loads and selects the HTTP/2-aware
    scheduler, publishes the initial page's byte budget in register R5,
    and serves pages with per-packet content annotations. *)

open Mptcp_sim

val prepare : ?scheduler:string -> Connection.t -> Http2.page -> unit
(** Load + select the HTTP/2-aware scheduler and publish page metadata. *)

val serve :
  ?at:float -> ?timeout:float -> Connection.t -> Http2.page ->
  Http2.load_result option
(** {!prepare} + {!Http2.load_page}. *)

val serve_with :
  ?at:float ->
  ?timeout:float ->
  scheduler_name:string ->
  Connection.t ->
  Http2.page ->
  Http2.load_result option
(** Serve with an arbitrary already-loaded scheduler (the uninformed
    baselines of Fig. 14: packets still carry annotations). *)
