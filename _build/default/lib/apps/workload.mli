(** Workload generators driving the evaluation scenarios. *)

open Mptcp_sim

val bulk : Connection.t -> at:float -> bytes:int -> unit
(** Bulk transfer: everything at once (iperf-like). *)

val cbr :
  ?signal_register:int ->
  ?props:int array ->
  Connection.t ->
  start:float ->
  stop:float ->
  interval:float ->
  rate:(float -> float) ->
  unit
(** Constant-bitrate stream: [rate t *. interval] bytes every [interval]
    seconds; the rate may change over time. With [signal_register], the
    current rate is published there before each write, for
    throughput-aware schedulers. *)

val bursty :
  ?props:int array ->
  Connection.t ->
  rng:Rng.t ->
  start:float ->
  stop:float ->
  burst_bytes:int ->
  mean_gap:float ->
  unit
(** On/off source with exponential gaps. *)

val request_response :
  ?props:int array ->
  Connection.t ->
  start:float ->
  stop:float ->
  period:float ->
  size:int ->
  unit
(** Thin-flow traffic (§5.4's assistant pattern). *)

type flow_result = {
  fct : float;  (** seconds from write to last in-order delivery *)
  wire_bytes : int;  (** bytes on the wire, all subflows *)
  goodput_bytes : int;
}

val measure_flow :
  ?at:float ->
  ?timeout:float ->
  ?before_write:(Connection.t -> unit) ->
  ?after_write:(Connection.t -> unit) ->
  mk_conn:(unit -> Connection.t) ->
  size:int ->
  unit ->
  flow_result option
(** One short flow on a fresh connection; the hooks give access to the
    extended API (e.g. the end-of-flow signal). [None] when the flow did
    not complete within [timeout]. *)

val measure_flows :
  ?at:float ->
  ?timeout:float ->
  ?before_write:(Connection.t -> unit) ->
  ?after_write:(Connection.t -> unit) ->
  mk_conn:(seed:int -> Connection.t) ->
  size:int ->
  reps:int ->
  unit ->
  float * float * int
(** Repeat over seeds; (mean FCT, mean wire bytes, completed count). *)
