(** MPTCP-aware web server (§5.5, "MPTCP-aware Webserver").

    The OCaml counterpart of the paper's patched Nghttp2: it loads the
    HTTP/2-aware scheduler, selects it for the connection, publishes the
    page's byte budget for the initial view through the scheduler
    registers, and serves pages with per-packet content annotations
    (via {!Http2.load_page}). *)

open Mptcp_sim

(** Prepare [conn] for HTTP/2-aware serving: load + select the scheduler
    and publish page metadata in the registers (R5 = bytes required for
    the initial page, as in the paper: "the scheduler registers contain
    information about the number of required bytes for the initial
    page"). *)
let prepare ?(scheduler = Schedulers.Specs.http2_aware) conn
    (page : Http2.page) =
  let sock = Connection.sock conn in
  Progmp_runtime.Api.load_scheduler scheduler ~name:"http2_aware";
  Progmp_runtime.Api.set_scheduler sock "http2_aware";
  let initial_bytes =
    Http2.bytes_of_class page Http2.Dependency_critical
    + Http2.bytes_of_class page Http2.Initial_view
  in
  Progmp_runtime.Api.set_register sock 4 initial_bytes

(** Serve a page with the HTTP/2-aware scheduler and return the load
    milestones. *)
let serve ?at ?timeout conn page =
  prepare conn page;
  Http2.load_page ?at ?timeout conn page

(** Serve with an arbitrary already-loaded scheduler (the uninformed
    baselines of Fig. 14: packets still carry annotations but the
    scheduler ignores them). *)
let serve_with ?at ?timeout ~scheduler_name conn page =
  Progmp_runtime.Api.set_scheduler (Connection.sock conn) scheduler_name;
  Http2.load_page ?at ?timeout conn page
