(** Chunk-based adaptive streaming with deadlines — the MP-DASH-style
    deadline-driven application of §5.4. A control loop recomputes the
    throughput required to meet every outstanding chunk deadline and
    signals it to the scheduler through register R1. *)

open Mptcp_sim

type chunk = {
  c_index : int;
  c_bytes : int;
  c_deadline : float;
  c_seqs : int list;
}

type session = {
  conn : Connection.t;
  period : float;
  mutable chunks : chunk list;  (** reversed *)
}

val required_rate : session -> int
(** Bytes/second needed to deliver every outstanding chunk by its
    deadline (the control loop's signal). *)

val start :
  ?at:float ->
  ?slack:float ->
  ?control_interval:float ->
  period:float ->
  count:int ->
  chunk_bytes:(int -> int) ->
  Connection.t ->
  session
(** One chunk per [period]; chunk [k] must arrive by
    [at + (k+1) * period + slack]. Call before [Connection.run]. *)

type outcome = {
  deadline_misses : int;
  worst_lateness : float;  (** seconds past deadline; 0 when all met *)
  backup_bytes : int;  (** wire bytes on non-preferred subflows *)
}

val evaluate : session -> outcome
(** After [Connection.run]. *)
