(** Canonical network scenarios shared by the examples, tests and the
    bench harness — the OCaml analogues of the paper's testbeds. *)

open Mptcp_sim

val wifi_lte :
  ?wifi_bw:float ->
  ?lte_bw:float ->
  ?wifi_loss:float ->
  ?lte_loss:float ->
  ?wifi_extra_delay:float ->
  ?lte_backup:bool ->
  unit ->
  Path_manager.path_spec list
(** The in-the-wild setup of Figs. 1/13/14: WiFi 10 ms RTT ~5 MB/s,
    LTE 40 ms RTT 4 MB/s; [lte_backup] (default true) flags LTE as the
    non-preferred subflow. *)

val fluctuate_wifi :
  Connection.t ->
  rng:Rng.t ->
  until:float ->
  ?interval:float ->
  low:float ->
  high:float ->
  unit ->
  unit
(** Redraw the WiFi rate uniformly in [low, high] every [interval]
    (call after [Connection.create]). *)

val mininet_two_subflows :
  ?bandwidth:float ->
  ?base_rtt:float ->
  ?rtt_ratio:float ->
  ?loss:float ->
  unit ->
  Path_manager.path_spec list
(** The Mininet-style setup of Figs. 10/12: equal bandwidth, RTTs
    [base_rtt] and [base_rtt *. rtt_ratio]. *)

val datacenter :
  ?bandwidth:float ->
  ?rtt:float ->
  ?loss:float ->
  ?n:int ->
  unit ->
  Path_manager.path_spec list
(** Short-RTT high-bandwidth paths (loss-compensation experiments). *)
