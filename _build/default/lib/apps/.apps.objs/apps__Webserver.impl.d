lib/apps/webserver.ml: Connection Http2 Mptcp_sim Progmp_runtime Schedulers
