lib/apps/scenario.mli: Connection Mptcp_sim Path_manager Rng
