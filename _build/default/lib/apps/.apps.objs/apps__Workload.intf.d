lib/apps/workload.mli: Connection Mptcp_sim Rng
