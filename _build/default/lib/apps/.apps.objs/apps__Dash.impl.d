lib/apps/dash.ml: Connection Eventq Float List Meta_socket Mptcp_sim Path_manager Progmp_runtime Tcp_subflow
