lib/apps/http2.ml: Float List Mptcp_sim
