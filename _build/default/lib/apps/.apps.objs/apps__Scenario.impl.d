lib/apps/scenario.ml: Connection Fmt Link List Mptcp_sim Path_manager Rng
