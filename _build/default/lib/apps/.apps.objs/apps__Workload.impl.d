lib/apps/workload.ml: Connection Eventq Fun List Meta_socket Mptcp_sim Path_manager Progmp_runtime Rng Stats Tcp_subflow
