lib/apps/http2.mli: Mptcp_sim
