lib/apps/webserver.mli: Connection Http2 Mptcp_sim
