lib/apps/dash.mli: Connection Mptcp_sim
