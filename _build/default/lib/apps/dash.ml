(** Chunk-based adaptive streaming with deadlines — the MP-DASH-style
    deadline-driven application of §5.4 (Table 2, "Ensure deadline").

    The server pushes one chunk per period; each chunk [k] must be fully
    delivered by [start + (k+1) * period + slack] or playback stalls. A
    small application control loop (outside the networking stack, as the
    paper prescribes in §6) recomputes the throughput required to meet
    the next deadline and signals it to the scheduler through register
    R1, so a TAP/deadline scheduler can keep non-preferred subflows
    asleep whenever the preferred ones suffice. *)

open Mptcp_sim

type chunk = { c_index : int; c_bytes : int; c_deadline : float; c_seqs : int list }

type session = {
  conn : Connection.t;
  period : float;
  mutable chunks : chunk list;  (** reversed *)
}

(* Throughput needed to deliver every outstanding chunk by its deadline:
   the max over chunks of undelivered bytes / time left. *)
let required_rate (s : session) =
  let meta = s.conn.Connection.meta in
  let now = Eventq.now s.conn.Connection.clock in
  List.fold_left
    (fun acc c ->
      let missing =
        List.fold_left
          (fun a seq ->
            if Meta_socket.delivery_time_of meta seq = None then
              a + s.conn.Connection.meta.Meta_socket.mss
            else a)
          0 c.c_seqs
      in
      if missing = 0 then acc
      else
        let remaining = c.c_deadline -. now in
        if remaining <= 0.01 then max_int / 2
        else max acc (int_of_float (float_of_int missing /. remaining)))
    0 s.chunks

(** Start a streaming session: [chunk_bytes k] is the size of chunk [k]
    (rate adaptation), one chunk every [period] seconds, [count] chunks
    in total, deadlines offset by [slack]. A control loop re-evaluates the
    throughput required to meet the outstanding deadlines every
    [control_interval] and signals it to the scheduler in R1. *)
let start ?(at = 0.2) ?(slack = 0.5) ?(control_interval = 0.1) ~period ~count
    ~chunk_bytes (conn : Connection.t) : session =
  let session = { conn; period; chunks = [] } in
  let sock = Connection.sock conn in
  let stop = at +. (float_of_int (count + 2) *. period) +. slack in
  let rec control t =
    if t < stop then
      Connection.at conn ~time:t (fun () ->
          Progmp_runtime.Api.set_register sock 0 (required_rate session);
          Connection.notify_scheduler conn;
          control (t +. control_interval))
  in
  control (at +. control_interval);
  let rec push k =
    if k < count then
      Connection.at conn
        ~time:(at +. (float_of_int k *. period))
        (fun () ->
          let bytes = chunk_bytes k in
          let deadline = at +. (float_of_int (k + 1) *. period) +. slack in
          let seqs = Connection.write conn bytes in
          session.chunks <-
            { c_index = k; c_bytes = bytes; c_deadline = deadline; c_seqs = seqs }
            :: session.chunks;
          Progmp_runtime.Api.set_register sock 0 (required_rate session);
          push (k + 1))
  in
  push 0;
  session

type outcome = {
  deadline_misses : int;
  worst_lateness : float;  (** seconds past deadline, 0 when all met *)
  backup_bytes : int;  (** wire bytes on non-preferred subflows *)
}

(** Evaluate the session after {!Connection.run}: deadline hits and
    backup-subflow usage. *)
let evaluate (s : session) : outcome =
  let meta = s.conn.Connection.meta in
  let misses = ref 0 and worst = ref 0.0 in
  List.iter
    (fun c ->
      let finish =
        List.fold_left
          (fun acc seq ->
            match (acc, Meta_socket.delivery_time_of meta seq) with
            | Some a, Some d -> Some (Float.max a d)
            | _, None | None, _ -> None)
          (Some 0.0) c.c_seqs
      in
      match finish with
      | Some f when f <= c.c_deadline -> ()
      | Some f ->
          incr misses;
          worst := Float.max !worst (f -. c.c_deadline)
      | None ->
          incr misses;
          worst := infinity)
    s.chunks;
  let backup_bytes =
    List.fold_left
      (fun acc m ->
        if m.Path_manager.spec.Path_manager.backup then
          acc + m.Path_manager.subflow.Tcp_subflow.bytes_sent
        else acc)
      0 s.conn.Connection.paths
  in
  { deadline_misses = !misses; worst_lateness = !worst; backup_bytes }
