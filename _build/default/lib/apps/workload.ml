(** Workload generators driving the evaluation scenarios: bulk transfers
    (iperf), constant-bitrate streaming with rate switches, bursty
    on/off traffic, request-response patterns and repeated short flows
    with per-flow completion times. *)

open Mptcp_sim

(** Bulk transfer: write everything at once (iperf-like). *)
let bulk conn ~at ~bytes = Connection.write_at conn ~time:at bytes

(** Constant-bitrate stream: write [rate t * interval] bytes every
    [interval] seconds between [start] and [stop]. [rate] is in bytes per
    second and may change over time (the 1 MB/s -> 4 MB/s switch of
    Figs. 1 and 13). If [signal_register] is given, the current rate is
    published there before each write, so throughput-aware schedulers see
    the application's target. *)
let cbr ?signal_register ?props conn ~start ~stop ~interval ~rate =
  let sock = Connection.sock conn in
  let rec tick time =
    if time < stop then
      Connection.at conn ~time (fun () ->
          let r = rate time in
          (match signal_register with
          | Some reg -> Progmp_runtime.Api.set_register sock reg (int_of_float r)
          | None -> ());
          let bytes = int_of_float (r *. interval) in
          if bytes > 0 then ignore (Connection.write ?props conn bytes);
          tick (time +. interval))
  in
  tick start

(** Bursty source: bursts of [burst_bytes] separated by idle gaps drawn
    from an exponential distribution with mean [mean_gap]. *)
let bursty ?props conn ~rng ~start ~stop ~burst_bytes ~mean_gap =
  let rec next time =
    if time < stop then
      Connection.at conn ~time (fun () ->
          ignore (Connection.write ?props conn burst_bytes);
          next (Eventq.now conn.Connection.clock +. Rng.exponential rng ~mean:mean_gap))
  in
  next start

(** Request-response pattern: a request of [size] bytes every [period]
    seconds (thin-flow traffic such as a voice assistant, §5.4). *)
let request_response ?props conn ~start ~stop ~period ~size =
  let rec tick time =
    if time < stop then
      Connection.at conn ~time (fun () ->
          ignore (Connection.write ?props conn size);
          tick (time +. period))
  in
  tick start

(** Outcome of one short flow. *)
type flow_result = {
  fct : float;  (** seconds from write to last in-order delivery *)
  wire_bytes : int;  (** bytes put on the wire, all subflows *)
  goodput_bytes : int;  (** application bytes of the flow *)
}

(** Measure one short flow on a fresh connection built by [mk_conn]:
    write [size] bytes at [at] (after slow-start-free establishment) and
    run to completion. [before_write]/[after_write] hook the extended API
    (e.g. signal the end of flow for the compensating scheduler).
    Returns [None] if the flow did not complete within [timeout]. *)
let measure_flow ?(at = 0.2) ?(timeout = 120.0) ?(before_write = fun _ -> ())
    ?(after_write = fun _ -> ()) ~mk_conn ~size () =
  let conn : Connection.t = mk_conn () in
  Connection.at conn ~time:at (fun () ->
      before_write conn;
      ignore (Connection.write conn size);
      after_write conn);
  Connection.run ~until:(at +. timeout) conn;
  let meta = conn.Connection.meta in
  let last = meta.Meta_socket.next_seq - 1 in
  match Meta_socket.fct meta ~first:0 ~last with
  | None -> None
  | Some t ->
      let wire =
        List.fold_left
          (fun acc m -> acc + m.Path_manager.subflow.Tcp_subflow.bytes_sent)
          0 conn.Connection.paths
      in
      Some { fct = t -. at; wire_bytes = wire; goodput_bytes = size }

(** Repeat {!measure_flow} [reps] times with varying seeds and aggregate:
    returns (mean FCT, mean wire bytes, completed count). *)
let measure_flows ?at ?timeout ?before_write ?after_write ~mk_conn ~size ~reps
    () =
  let results =
    List.filter_map
      (fun i ->
        measure_flow ?at ?timeout ?before_write ?after_write
          ~mk_conn:(fun () -> mk_conn ~seed:(1000 + (7919 * i)))
          ~size ())
      (List.init reps Fun.id)
  in
  let fcts = List.map (fun r -> r.fct) results in
  let wires = List.map (fun r -> float_of_int r.wire_bytes) results in
  (Stats.mean fcts, Stats.mean wires, List.length results)
