(** Canonical network scenarios shared by the examples, the tests and the
    bench harness — the OCaml analogues of the paper's two testbeds. *)

open Mptcp_sim

(** "In the wild" WiFi + LTE setup (Figs. 1, 13, 14): WiFi with a 10 ms
    RTT and ~5 MB/s that fluctuates, LTE with a 40 ms RTT and 4 MB/s.
    [lte_backup] flags LTE as the non-preferred subflow.
    [wifi_extra_delay] adds one-way delay to WiFi (the RTT-ratio sweep of
    Fig. 14). *)
let wifi_lte ?(wifi_bw = 5_000_000.0) ?(lte_bw = 4_000_000.0)
    ?(wifi_loss = 0.0) ?(lte_loss = 0.0) ?(wifi_extra_delay = 0.0)
    ?(lte_backup = true) () =
  [
    Path_manager.symmetric ~name:"wifi"
      {
        Link.default_params with
        Link.bandwidth = wifi_bw;
        delay = 0.005 +. wifi_extra_delay;
        loss = wifi_loss;
        buffer_bytes = 512 * 1024;
      };
    Path_manager.symmetric ~name:"lte" ~backup:lte_backup
      {
        Link.default_params with
        Link.bandwidth = lte_bw;
        delay = 0.020;
        loss = lte_loss;
        buffer_bytes = 768 * 1024;
      };
  ]

(** Install WiFi bandwidth fluctuation: every [interval], the WiFi rate
    is redrawn uniformly from [low, high] (the dips visible in Fig. 13's
    WiFi trace). Call after {!Connection.create}. *)
let fluctuate_wifi (conn : Connection.t) ~rng ~until ?(interval = 0.5)
    ~low ~high () =
  match Connection.find_path conn "wifi" with
  | None -> ()
  | Some m ->
      let link = m.Path_manager.data_link in
      let rec tick time =
        if time < until then
          Connection.at conn ~time (fun () ->
              let bw = low +. (Rng.float rng *. (high -. low)) in
              Link.set_bandwidth link bw;
              tick (time +. interval))
      in
      tick interval

(** Mininet-style symmetric two-subflow setup (Figs. 10, 12): equal
    bandwidth, base RTT of [base_rtt] on subflow 1 and
    [base_rtt *. rtt_ratio] on subflow 2, [loss] on both. *)
let mininet_two_subflows ?(bandwidth = 1_250_000.0) ?(base_rtt = 0.020)
    ?(rtt_ratio = 1.0) ?(loss = 0.0) () =
  let mk name rtt =
    Path_manager.symmetric ~name
      {
        Link.default_params with
        Link.bandwidth = bandwidth;
        delay = rtt /. 2.0;
        loss;
        buffer_bytes = 256 * 1024;
      }
  in
  [ mk "sbf1" base_rtt; mk "sbf2" (base_rtt *. rtt_ratio) ]

(** Data-center-ish short-RTT paths (loss-compensation experiments). *)
let datacenter ?(bandwidth = 125_000_000.0) ?(rtt = 0.0002) ?(loss = 0.0)
    ?(n = 2) () =
  List.init n (fun i ->
      Path_manager.symmetric
        ~name:(Fmt.str "dc%d" i)
        {
          Link.default_params with
          Link.bandwidth;
          delay = rtt /. 2.0;
          loss;
          buffer_bytes = 1 lsl 20;
        })
