(** First-class execution-engine registry — see engine.mli. *)

type caps = {
  compiled : bool;
  verified : bool;
  description : string;
}

type factory = Progmp_lang.Tast.program -> Env.t -> unit

type t = { engine_name : string; caps : caps; factory : factory }

exception Unknown of string

let registry : (string, t) Hashtbl.t = Hashtbl.create 8

let register ?caps name factory =
  let caps =
    match caps with
    | Some c -> c
    | None -> { compiled = false; verified = false; description = name }
  in
  Hashtbl.replace registry name { engine_name = name; caps; factory }

let find name = Hashtbl.find_opt registry name

let names () =
  List.sort compare (Hashtbl.fold (fun k _ acc -> k :: acc) registry [])

let all () = List.filter_map find (names ())

let get name =
  match find name with
  | Some e -> e
  | None ->
      raise
        (Unknown
           (Fmt.str "unknown engine %s (available: %s)" name
              (String.concat ", " (names ()))))

(* Instantiation cache: (engine name, source digest) -> decision
   function. Keyed by the source digest so N schedulers loaded from the
   same specification share one compilation per engine. *)
let cache : (string * string, Env.t -> unit) Hashtbl.t = Hashtbl.create 32

let cache_hits = ref 0

let cache_misses = ref 0

let cache_stats () = (!cache_hits, !cache_misses)

let instantiate ?digest name program =
  let e = get name in
  match digest with
  | None -> e.factory program
  | Some d -> (
      let key = (name, d) in
      match Hashtbl.find_opt cache key with
      | Some run ->
          incr cache_hits;
          run
      | None ->
          incr cache_misses;
          let run = e.factory program in
          Hashtbl.replace cache key run;
          run)

(* The two runtime-resident backends register themselves when this
   library is linked; [Progmp_compiler.Compile] adds "vm". *)
let () =
  register "interpreter"
    ~caps:
      {
        compiled = false;
        verified = false;
        description = "reference tree-walking interpreter over the typed IR";
      }
    (fun program env -> Interpreter.run program env);
  register "aot"
    ~caps:
      {
        compiled = true;
        verified = false;
        description = "ahead-of-time closure compiler (the paper's AOT backend)";
      }
    Aot.compile
