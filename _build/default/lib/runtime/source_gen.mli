(** Source-generating AOT backend — the analogue of the paper's
    ahead-of-time compiler that "generates and compiles C functions"
    (§4.1): renders a checked program as a standalone OCaml module
    exposing [val engine : Progmp_runtime.Env.t -> unit]. Generated
    modules are compiled by a dune rule and differentially tested
    against the interpreter (see test/gen). *)

val emit : ?name:string -> Progmp_lang.Tast.program -> string
