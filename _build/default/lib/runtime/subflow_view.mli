(** Immutable per-execution snapshot of a subflow's state — the
    properties the programming model exposes (paper §3.1/Table 1). The
    host builds one view per subflow before each scheduler execution.
    Times are in microseconds, throughput in bytes/second. *)

type t = {
  id : int;  (** stable subflow identifier, 0-based and < 62 *)
  rtt_us : int;
  rtt_avg_us : int;
  rtt_var_us : int;
  cwnd : int;  (** congestion window, segments *)
  ssthresh : int;
  skbs_in_flight : int;
  queued : int;  (** segments assigned but not yet on the wire *)
  lost_skbs : int;
  is_backup : bool;
  tsq_throttled : bool;
  lossy : bool;
  rto_us : int;
  throughput_bps : int;  (** achievable-rate estimate, bytes/second *)
  mss : int;
  receive_window_bytes : int;  (** free receive-window space *)
}

val default : t
(** A plausible 10 ms / cwnd-10 subflow; tests and examples override
    fields of interest. *)

val has_window_for : t -> Packet.t -> bool
(** The model's [HAS_WINDOW_FOR]. *)

val prop_int : t -> Progmp_lang.Props.subflow_prop -> int
(** Property read shared by the interpreter and the VM helpers;
    booleans encode as 0/1. *)

val pp : Format.formatter -> t -> unit
