(** Ahead-of-time compilation backend — execution alternative 2.

    The paper's AOT backend generates and compiles C functions so that
    scheduling runs without a parser or interpreter in the kernel. The
    OCaml analogue is closure compilation: the typed IR is translated
    {e once} into a tree of closures, so per-execution work contains no
    dispatch on the IR constructors. Semantics are identical to
    {!Interpreter} (the differential test suite checks this). *)

open Progmp_lang
open Interpreter

type frame = { env : Env.t; slots : value array }

type 'a code = frame -> 'a

exception Returned_aot

let rec compile_matcher (filters : Tast.lambda list) : (frame -> Packet.t -> bool)
    =
  match filters with
  | [] -> fun _ _ -> true
  | lam :: rest ->
      let body = compile_bool lam.Tast.body in
      let rest = compile_matcher rest in
      let param = lam.Tast.param in
      fun fr pkt ->
        fr.slots.(param) <- Vpacket (Some pkt);
        body fr && rest fr pkt

and compile_scan (view : Tast.queue_view) :
    frame -> f:(int -> Packet.t -> 'a option) -> 'a option =
  let base = view.Tast.base in
  let matches = compile_matcher view.Tast.filters in
  fun fr ~f ->
    let q = Env.queue fr.env base in
    let rec go i =
      match Pqueue.nth q i with
      | None -> None
      | Some pkt ->
          if matches fr pkt then
            match f i pkt with None -> go (i + 1) | Some _ as r -> r
          else go (i + 1)
    in
    go 0

and compile_int (e : Tast.expr) : int code =
  match e.Tast.desc with
  | Tast.Int_lit n -> fun _ -> n
  | Tast.Register i -> fun fr -> Env.get_register fr.env i
  | Tast.Slot i -> fun fr -> as_int fr.slots.(i)
  | Tast.Neg a ->
      let a = compile_int a in
      fun fr -> -a fr
  | Tast.Binop (op, a, b) -> (
      let ca = compile_int a and cb = compile_int b in
      match op with
      | Tast.Add -> fun fr -> ca fr + cb fr
      | Tast.Sub -> fun fr -> ca fr - cb fr
      | Tast.Mul -> fun fr -> ca fr * cb fr
      | Tast.Div ->
          fun fr ->
            let d = cb fr in
            if d = 0 then 0 else ca fr / d
      | Tast.Mod ->
          fun fr ->
            let d = cb fr in
            if d = 0 then 0 else ca fr mod d
      | Tast.Eq | Tast.Neq | Tast.Lt | Tast.Le | Tast.Gt | Tast.Ge | Tast.And
      | Tast.Or ->
          (* int-typed Binop is arithmetic only (typechecked) *)
          assert false)
  | Tast.Sbf_sum (l, lam) ->
      let cl = compile_sbfs l in
      let key = compile_int lam.Tast.body in
      let param = lam.Tast.param in
      fun fr ->
        List.fold_left
          (fun acc i ->
            fr.slots.(param) <- Vsubflow (Some i);
            acc + key fr)
          0 (cl fr)
  | Tast.Sbf_count l ->
      let cl = compile_sbfs l in
      fun fr -> List.length (cl fr)
  | Tast.Sbf_prop (s, prop) ->
      let cs = compile_sbf s in
      fun fr ->
        (match cs fr with
        | None -> 0
        | Some i -> Subflow_view.prop_int fr.env.Env.subflows.(i) prop)
  | Tast.Q_count view ->
      let scan = compile_scan view in
      fun fr ->
        let n = ref 0 in
        ignore
          (scan fr ~f:(fun _ _ ->
               incr n;
               None));
        !n
  | Tast.Pkt_prop (p, prop) -> (
      let cp = compile_pkt p in
      match prop with
      | Props.Size -> (
          fun fr -> match cp fr with None -> 0 | Some pkt -> pkt.Packet.size)
      | Props.Seq -> (
          fun fr -> match cp fr with None -> 0 | Some pkt -> pkt.Packet.seq)
      | Props.Sent_count -> (
          fun fr ->
            match cp fr with None -> 0 | Some pkt -> pkt.Packet.sent_count)
      | Props.User_prop i -> (
          fun fr ->
            match cp fr with None -> 0 | Some pkt -> Packet.user_prop pkt i))
  | _ -> fun _ -> raise (Type_bug "aot: expected int expression")

and compile_bool (e : Tast.expr) : bool code =
  match e.Tast.desc with
  | Tast.Bool_lit b -> fun _ -> b
  | Tast.Slot i -> fun fr -> as_bool fr.slots.(i)
  | Tast.Not a ->
      let a = compile_bool a in
      fun fr -> not (a fr)
  | Tast.Binop ((Tast.And | Tast.Or) as op, a, b) ->
      let ca = compile_bool a and cb = compile_bool b in
      if op = Tast.And then fun fr -> ca fr && cb fr
      else fun fr -> ca fr || cb fr
  | Tast.Binop ((Tast.Lt | Tast.Le | Tast.Gt | Tast.Ge) as op, a, b) ->
      let ca = compile_int a and cb = compile_int b in
      (match op with
      | Tast.Lt -> fun fr -> ca fr < cb fr
      | Tast.Le -> fun fr -> ca fr <= cb fr
      | Tast.Gt -> fun fr -> ca fr > cb fr
      | Tast.Ge -> fun fr -> ca fr >= cb fr
      | _ -> assert false)
  | Tast.Binop ((Tast.Eq | Tast.Neq) as op, a, b) ->
      let eq = compile_equality a b in
      if op = Tast.Eq then eq else fun fr -> not (eq fr)
  | Tast.Sbf_empty l ->
      let cl = compile_sbfs l in
      fun fr -> cl fr = []
  | Tast.Q_empty view ->
      let scan = compile_scan view in
      fun fr -> scan fr ~f:(fun _ p -> Some p) = None
  | Tast.Sbf_prop (s, prop) ->
      let cs = compile_sbf s in
      fun fr ->
        (match cs fr with
        | None -> false
        | Some i -> Subflow_view.prop_int fr.env.Env.subflows.(i) prop <> 0)
  | Tast.Has_window_for (s, p) ->
      let cs = compile_sbf s and cp = compile_pkt p in
      fun fr ->
        (match (cs fr, cp fr) with
        | Some i, Some pkt ->
            Subflow_view.has_window_for fr.env.Env.subflows.(i) pkt
        | _, _ -> false)
  | Tast.Sent_on (p, s) ->
      let cp = compile_pkt p and cs = compile_sbf s in
      fun fr ->
        (match (cp fr, cs fr) with
        | Some pkt, Some i ->
            Packet.sent_on pkt ~sbf_id:fr.env.Env.subflows.(i).Subflow_view.id
        | _, _ -> false)
  | _ -> fun _ -> raise (Type_bug "aot: expected bool expression")

and compile_equality (a : Tast.expr) (b : Tast.expr) : bool code =
  match a.Tast.ty with
  | Ty.Int ->
      let ca = compile_int a and cb = compile_int b in
      fun fr -> ca fr = cb fr
  | Ty.Bool ->
      let ca = compile_bool a and cb = compile_bool b in
      fun fr -> ca fr = cb fr
  | Ty.Packet ->
      let ca = compile_pkt a and cb = compile_pkt b in
      fun fr ->
        (match (ca fr, cb fr) with
        | None, None -> true
        | Some p, Some q -> p.Packet.id = q.Packet.id
        | None, Some _ | Some _, None -> false)
  | Ty.Subflow ->
      let ca = compile_sbf a and cb = compile_sbf b in
      fun fr -> ca fr = cb fr
  | Ty.Subflow_list | Ty.Queue ->
      fun _ -> raise (Type_bug "aot: equality on unsupported type")

and compile_pkt (e : Tast.expr) : Packet.t option code =
  match e.Tast.desc with
  | Tast.Null _ -> fun _ -> None
  | Tast.Slot i -> fun fr -> as_packet fr.slots.(i)
  | Tast.Q_top view ->
      let scan = compile_scan view in
      fun fr -> scan fr ~f:(fun _ p -> Some p)
  | Tast.Q_pop view ->
      let base = view.Tast.base in
      let scan = compile_scan view in
      fun fr ->
        let q = Env.queue fr.env base in
        scan fr ~f:(fun i p ->
            ignore (Pqueue.remove_at q i);
            Env.record_pop fr.env q p;
            Some p)
  | Tast.Q_min (view, lam) -> compile_pkt_select ~better:( < ) view lam
  | Tast.Q_max (view, lam) -> compile_pkt_select ~better:( > ) view lam
  | _ -> fun _ -> raise (Type_bug "aot: expected packet expression")

and compile_pkt_select ~better (view : Tast.queue_view) (lam : Tast.lambda) :
    Packet.t option code =
  let scan = compile_scan view in
  let key = compile_int lam.Tast.body in
  let param = lam.Tast.param in
  fun fr ->
    let best = ref None in
    ignore
      (scan fr ~f:(fun _ pkt ->
           fr.slots.(param) <- Vpacket (Some pkt);
           let k = key fr in
           (match !best with
           | Some (_, bk) when not (better k bk) -> ()
           | Some _ | None -> best := Some (pkt, k));
           None));
    Option.map fst !best

and compile_sbf (e : Tast.expr) : int option code =
  match e.Tast.desc with
  | Tast.Null _ -> fun _ -> None
  | Tast.Slot i -> fun fr -> as_subflow fr.slots.(i)
  | Tast.Sbf_min (l, lam) -> compile_sbf_select ~better:( < ) l lam
  | Tast.Sbf_max (l, lam) -> compile_sbf_select ~better:( > ) l lam
  | Tast.Sbf_get (l, idx) ->
      let cl = compile_sbfs l and ci = compile_int idx in
      fun fr ->
        let i = ci fr in
        if i < 0 then None else List.nth_opt (cl fr) i
  | _ -> fun _ -> raise (Type_bug "aot: expected subflow expression")

and compile_sbf_select ~better l (lam : Tast.lambda) : int option code =
  let cl = compile_sbfs l in
  let key = compile_int lam.Tast.body in
  let param = lam.Tast.param in
  fun fr ->
    let best =
      List.fold_left
        (fun acc i ->
          fr.slots.(param) <- Vsubflow (Some i);
          let k = key fr in
          match acc with
          | Some (_, bk) when not (better k bk) -> acc
          | Some _ | None -> Some (i, k))
        None (cl fr)
    in
    Option.map fst best

and compile_sbfs (e : Tast.expr) : int list code =
  match e.Tast.desc with
  | Tast.Subflows ->
      fun fr -> List.init (Array.length fr.env.Env.subflows) Fun.id
  | Tast.Slot i -> fun fr -> as_subflows fr.slots.(i)
  | Tast.Sbf_filter (l, lam) ->
      let cl = compile_sbfs l in
      let pred = compile_bool lam.Tast.body in
      let param = lam.Tast.param in
      fun fr ->
        List.filter
          (fun i ->
            fr.slots.(param) <- Vsubflow (Some i);
            pred fr)
          (cl fr)
  | _ -> fun _ -> raise (Type_bug "aot: expected subflow list expression")

(* Compile an expression of statically known type to a boxed value. *)
and compile_value (e : Tast.expr) : value code =
  match e.Tast.ty with
  | Ty.Int ->
      let c = compile_int e in
      fun fr -> Vint (c fr)
  | Ty.Bool ->
      let c = compile_bool e in
      fun fr -> Vbool (c fr)
  | Ty.Packet ->
      let c = compile_pkt e in
      fun fr -> Vpacket (c fr)
  | Ty.Subflow ->
      let c = compile_sbf e in
      fun fr -> Vsubflow (c fr)
  | Ty.Subflow_list ->
      let c = compile_sbfs e in
      fun fr -> Vsubflows (c fr)
  | Ty.Queue -> fun _ -> raise (Type_bug "aot: queue value")

let rec compile_stmt (s : Tast.stmt) : unit code =
  match s with
  | Tast.Var_decl (slot, e) ->
      let c = compile_value e in
      fun fr -> fr.slots.(slot) <- c fr
  | Tast.If (cond, then_, else_) ->
      let cc = compile_bool cond in
      let ct = compile_block then_ and ce = compile_block else_ in
      fun fr -> if cc fr then ct fr else ce fr
  | Tast.Foreach (slot, src, body) ->
      let cs = compile_sbfs src in
      let cb = compile_block body in
      fun fr ->
        List.iter
          (fun i ->
            fr.slots.(slot) <- Vsubflow (Some i);
            cb fr)
          (cs fr)
  | Tast.Set_register (r, e) ->
      let c = compile_int e in
      fun fr -> Env.set_register fr.env r (c fr)
  | Tast.Push (s, p) ->
      let cs = compile_sbf s and cp = compile_pkt p in
      fun fr ->
        (match (cs fr, cp fr) with
        | Some i, Some pkt ->
            Env.emit_push fr.env ~sbf_id:fr.env.Env.subflows.(i).Subflow_view.id
              pkt
        | _, _ -> ())
  | Tast.Drop e ->
      let c = compile_pkt e in
      fun fr -> ( match c fr with Some pkt -> Env.emit_drop fr.env pkt | None -> ())
  | Tast.Return -> fun _ -> raise Returned_aot

and compile_block (b : Tast.block) : unit code =
  let cs = List.map compile_stmt b in
  fun fr -> List.iter (fun c -> c fr) cs

(** [compile p] translates the program once; the returned engine can be
    executed many times. *)
let compile (p : Tast.program) : Env.t -> unit =
  let body = compile_block p.Tast.body in
  let n = max 1 p.Tast.num_slots in
  fun env ->
    let fr = { env; slots = Array.make n (Vint 0) } in
    try body fr with Returned_aot -> ()
