(** Scheduler loading, registry and execution.

    A scheduler is a checked + optimized program plus an execution
    engine. Loaded schedulers live in a global registry so applications
    can reuse them by name without recompilation (paper §3.2). Engines
    are interchangeable: the interpreter (default), the AOT closure
    backend ({!use_aot}), or the eBPF-style VM installed by
    [Progmp_compiler.Compile.install] via {!set_engine}. *)

type engine = Interpret | Aot | Custom of string

type t = {
  name : string;
  program : Progmp_lang.Tast.program;
  mutable engine_name : engine;
  mutable run : Env.t -> unit;
}

exception Load_error of string
(** Raised with a located, human-readable message when a specification
    fails to lex, parse or type-check. *)

val of_source : name:string -> string -> t
(** Compile a specification (without registering it).
    @raise Load_error when the spec is invalid. *)

val use_aot : t -> unit
(** Switch to the closure-compiling AOT engine. *)

val set_engine : t -> name:string -> (Env.t -> unit) -> unit
(** Install a custom engine (e.g. the compiled VM, a profiler, or a
    native baseline). *)

val engine_label : t -> string

val load : name:string -> string -> t
(** Compile and register under [name], replacing any previous entry.
    @raise Load_error when the spec is invalid. *)

val find : string -> t option

val loaded_names : unit -> string list

val execute : t -> Env.t -> subflows:Subflow_view.t array -> Action.t list
(** One scheduler execution against a subflow snapshot; returns the
    produced actions in program order (after restoring popped-but-
    unhandled packets to their queues). *)

val execute_compressed :
  ?max_rounds:int ->
  t ->
  Env.t ->
  snapshot:(unit -> Subflow_view.t array) ->
  apply:(Action.t -> unit) ->
  Action.t list
(** Compressed execution (paper §4.1): re-execute while the scheduler
    makes progress, bounded by [max_rounds] (default 64). [apply] must
    apply each action to the host state and [snapshot] must return fresh
    views, so congestion-window checks eventually stop the loop. *)
