(** Ahead-of-time compilation backend — execution alternative 2.

    The paper's AOT backend generates and compiles C; the OCaml analogue
    is closure compilation: the typed IR is translated once into a tree
    of closures, removing all per-execution dispatch on IR constructors.
    Semantics are identical to {!Interpreter} (differentially tested). *)

val compile : Progmp_lang.Tast.program -> Env.t -> unit
(** [compile p] translates once; the returned engine runs many times. *)
