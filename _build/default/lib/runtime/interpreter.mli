(** Tree-walking interpreter over the typed IR — execution alternative 1
    of the paper's runtime (§4.1) and the semantic reference for the
    compiled backends.

    Graceful-failure semantics: selections over empty sets yield NULL,
    properties of NULL read as 0/false, PUSH/DROP of NULL are no-ops,
    division and modulo by zero yield 0. Queue filters evaluate with
    late materialization (no view is ever built). *)

type value =
  | Vint of int
  | Vbool of bool
  | Vpacket of Packet.t option
  | Vsubflow of int option  (** index into [env.subflows] *)
  | Vsubflows of int list  (** indices, in snapshot order *)

exception Type_bug of string
(** Only raised on interpreter bugs; the type checker rules these out
    for checked programs. *)

val as_int : value -> int

val as_bool : value -> bool

val as_packet : value -> Packet.t option

val as_subflow : value -> int option

val as_subflows : value -> int list

type frame = { env : Env.t; slots : value array }

exception Returned
(** Internal control-flow marker for [RETURN]; escapes only from
    {!exec_stmt}/{!exec_block} when used directly (e.g. by the
    profiler), never from {!run}. *)

val eval : frame -> Progmp_lang.Tast.expr -> value

val exec_stmt : frame -> Progmp_lang.Tast.stmt -> unit

val exec_block : frame -> Progmp_lang.Tast.block -> unit

val run : Progmp_lang.Tast.program -> Env.t -> unit
(** One scheduler execution against an environment prepared with
    {!Env.begin_execution}; actions are buffered in the environment. *)
