(** Tree-walking interpreter over the typed IR — execution alternative 1
    of the paper's runtime (§4.1), and the semantic reference for the
    compiled backend.

    Graceful-failure semantics ("no exceptions by design"):
    - declarative selections over empty sets yield [NULL];
    - properties of [NULL] entities read as 0 / [false];
    - [PUSH]/[DROP] of [NULL] are no-ops;
    - division and modulo by zero yield 0.

    Queue [FILTER]s are evaluated with late materialization: a view is
    never built; the base queue is scanned and each candidate packet is
    tested against the filter stack. *)

open Progmp_lang

type value =
  | Vint of int
  | Vbool of bool
  | Vpacket of Packet.t option
  | Vsubflow of int option  (** index into [env.subflows] *)
  | Vsubflows of int list  (** indices into [env.subflows], in order *)

(* Only raised on interpreter bugs: the type checker rules these out. *)
exception Type_bug of string

let as_int = function
  | Vint n -> n
  | Vbool b -> if b then 1 else 0
  | Vpacket _ | Vsubflow _ | Vsubflows _ -> raise (Type_bug "expected int")

let as_bool = function
  | Vbool b -> b
  | Vint _ | Vpacket _ | Vsubflow _ | Vsubflows _ -> raise (Type_bug "expected bool")

let as_packet = function
  | Vpacket p -> p
  | Vint _ | Vbool _ | Vsubflow _ | Vsubflows _ -> raise (Type_bug "expected packet")

let as_subflow = function
  | Vsubflow s -> s
  | Vint _ | Vbool _ | Vpacket _ | Vsubflows _ -> raise (Type_bug "expected subflow")

let as_subflows = function
  | Vsubflows l -> l
  | Vint _ | Vbool _ | Vpacket _ | Vsubflow _ ->
      raise (Type_bug "expected subflow list")

type frame = { env : Env.t; slots : value array }

let subflow_view frame idx = frame.env.Env.subflows.(idx)

(* Packet matches the whole filter stack of a view. *)
let rec matches frame (filters : Tast.lambda list) (pkt : Packet.t) =
  match filters with
  | [] -> true
  | lam :: rest ->
      frame.slots.(lam.Tast.param) <- Vpacket (Some pkt);
      as_bool (eval frame lam.Tast.body) && matches frame rest pkt

and scan_queue frame (view : Tast.queue_view) ~f =
  (* Iterate matching packets front-to-back; [f] returns [None] to keep
     scanning. Index-based so that POP (which mutates) can stop safely. *)
  let q = Env.queue frame.env view.Tast.base in
  let rec go i =
    match Pqueue.nth q i with
    | None -> None
    | Some pkt ->
        if matches frame view.Tast.filters pkt then
          match f i pkt with None -> go (i + 1) | Some _ as r -> r
        else go (i + 1)
  in
  go 0

and eval frame (e : Tast.expr) : value =
  match e.Tast.desc with
  | Tast.Int_lit n -> Vint n
  | Tast.Bool_lit b -> Vbool b
  | Tast.Null ty -> (
      match ty with
      | Ty.Subflow -> Vsubflow None
      | Ty.Packet | Ty.Int | Ty.Bool | Ty.Subflow_list | Ty.Queue ->
          Vpacket None)
  | Tast.Register i -> Vint (Env.get_register frame.env i)
  | Tast.Slot i -> frame.slots.(i)
  | Tast.Not a -> Vbool (not (as_bool (eval frame a)))
  | Tast.Neg a -> Vint (-as_int (eval frame a))
  | Tast.Binop (op, a, b) -> eval_binop frame op a b
  | Tast.Subflows ->
      Vsubflows (List.init (Array.length frame.env.Env.subflows) Fun.id)
  | Tast.Sbf_filter (l, lam) ->
      let idxs = as_subflows (eval frame l) in
      Vsubflows
        (List.filter
           (fun i ->
             frame.slots.(lam.Tast.param) <- Vsubflow (Some i);
             as_bool (eval frame lam.Tast.body))
           idxs)
  | Tast.Sbf_min (l, lam) -> Vsubflow (select_sbf frame ~better:( < ) l lam)
  | Tast.Sbf_max (l, lam) -> Vsubflow (select_sbf frame ~better:( > ) l lam)
  | Tast.Sbf_sum (l, lam) ->
      let idxs = as_subflows (eval frame l) in
      Vint
        (List.fold_left
           (fun acc i ->
             frame.slots.(lam.Tast.param) <- Vsubflow (Some i);
             acc + as_int (eval frame lam.Tast.body))
           0 idxs)
  | Tast.Sbf_get (l, idx) ->
      let idxs = as_subflows (eval frame l) in
      let i = as_int (eval frame idx) in
      (* negative indices are NULL, like any out-of-range GET *)
      Vsubflow (if i < 0 then None else List.nth_opt idxs i)
  | Tast.Sbf_count l -> Vint (List.length (as_subflows (eval frame l)))
  | Tast.Sbf_empty l -> Vbool (as_subflows (eval frame l) = [])
  | Tast.Sbf_prop (s, prop) -> (
      match as_subflow (eval frame s) with
      | None -> (
          match Props.subflow_prop_type prop with
          | Ty.Bool -> Vbool false
          | _ -> Vint 0)
      | Some i -> (
          let v = Subflow_view.prop_int (subflow_view frame i) prop in
          match Props.subflow_prop_type prop with
          | Ty.Bool -> Vbool (v <> 0)
          | _ -> Vint v))
  | Tast.Has_window_for (s, p) -> (
      match (as_subflow (eval frame s), as_packet (eval frame p)) with
      | Some i, Some pkt ->
          Vbool (Subflow_view.has_window_for (subflow_view frame i) pkt)
      | _, _ -> Vbool false)
  | Tast.Q_top view -> Vpacket (scan_queue frame view ~f:(fun _ p -> Some p))
  | Tast.Q_pop view ->
      let q = Env.queue frame.env view.Tast.base in
      let found =
        scan_queue frame view ~f:(fun i p ->
            ignore (Pqueue.remove_at q i);
            Env.record_pop frame.env q p;
            Some p)
      in
      Vpacket found
  | Tast.Q_min (view, lam) -> Vpacket (select_pkt frame ~better:( < ) view lam)
  | Tast.Q_max (view, lam) -> Vpacket (select_pkt frame ~better:( > ) view lam)
  | Tast.Q_count view ->
      let n = ref 0 in
      ignore
        (scan_queue frame view ~f:(fun _ _ ->
             incr n;
             None));
      Vint !n
  | Tast.Q_empty view ->
      Vbool (scan_queue frame view ~f:(fun _ p -> Some p) = None)
  | Tast.Pkt_prop (p, prop) -> (
      match as_packet (eval frame p) with
      | None -> Vint 0
      | Some pkt -> (
          match prop with
          | Props.Size -> Vint pkt.Packet.size
          | Props.Seq -> Vint pkt.Packet.seq
          | Props.Sent_count -> Vint pkt.Packet.sent_count
          | Props.User_prop i -> Vint (Packet.user_prop pkt i)))
  | Tast.Sent_on (p, s) -> (
      match (as_packet (eval frame p), as_subflow (eval frame s)) with
      | Some pkt, Some i ->
          Vbool (Packet.sent_on pkt ~sbf_id:(subflow_view frame i).Subflow_view.id)
      | _, _ -> Vbool false)

and eval_binop frame op a b =
  match op with
  (* AND/OR short-circuit, as predicates rely on it. *)
  | Tast.And -> Vbool (as_bool (eval frame a) && as_bool (eval frame b))
  | Tast.Or -> Vbool (as_bool (eval frame a) || as_bool (eval frame b))
  | Tast.Add -> Vint (as_int (eval frame a) + as_int (eval frame b))
  | Tast.Sub -> Vint (as_int (eval frame a) - as_int (eval frame b))
  | Tast.Mul -> Vint (as_int (eval frame a) * as_int (eval frame b))
  | Tast.Div ->
      let d = as_int (eval frame b) in
      Vint (if d = 0 then 0 else as_int (eval frame a) / d)
  | Tast.Mod ->
      let d = as_int (eval frame b) in
      Vint (if d = 0 then 0 else as_int (eval frame a) mod d)
  | Tast.Lt -> Vbool (as_int (eval frame a) < as_int (eval frame b))
  | Tast.Le -> Vbool (as_int (eval frame a) <= as_int (eval frame b))
  | Tast.Gt -> Vbool (as_int (eval frame a) > as_int (eval frame b))
  | Tast.Ge -> Vbool (as_int (eval frame a) >= as_int (eval frame b))
  | Tast.Eq | Tast.Neq ->
      let va = eval frame a and vb = eval frame b in
      let equal =
        match (va, vb) with
        | Vint x, Vint y -> x = y
        | Vbool x, Vbool y -> x = y
        | Vpacket x, Vpacket y -> (
            match (x, y) with
            | None, None -> true
            | Some p, Some q -> p.Packet.id = q.Packet.id
            | None, Some _ | Some _, None -> false)
        | Vsubflow x, Vsubflow y -> x = y
        | (Vint _ | Vbool _ | Vpacket _ | Vsubflow _ | Vsubflows _), _ ->
            raise (Type_bug "equality on incompatible values")
      in
      Vbool (if op = Tast.Eq then equal else not equal)

and select_sbf frame ~better l (lam : Tast.lambda) =
  let idxs = as_subflows (eval frame l) in
  let best =
    List.fold_left
      (fun acc i ->
        frame.slots.(lam.Tast.param) <- Vsubflow (Some i);
        let key = as_int (eval frame lam.Tast.body) in
        match acc with
        | Some (_, bk) when not (better key bk) -> acc
        | Some _ | None -> Some (i, key))
      None idxs
  in
  Option.map fst best

and select_pkt frame ~better (view : Tast.queue_view) (lam : Tast.lambda) =
  let best = ref None in
  ignore
    (scan_queue frame view ~f:(fun _ pkt ->
         frame.slots.(lam.Tast.param) <- Vpacket (Some pkt);
         let key = as_int (eval frame lam.Tast.body) in
         (match !best with
         | Some (_, bk) when not (better key bk) -> ()
         | Some _ | None -> best := Some (pkt, key));
         None));
  Option.map fst !best

exception Returned

let rec exec_stmt frame (s : Tast.stmt) =
  match s with
  | Tast.Var_decl (slot, e) -> frame.slots.(slot) <- eval frame e
  | Tast.If (cond, then_, else_) ->
      if as_bool (eval frame cond) then exec_block frame then_
      else exec_block frame else_
  | Tast.Foreach (slot, src, body) ->
      let idxs = as_subflows (eval frame src) in
      List.iter
        (fun i ->
          frame.slots.(slot) <- Vsubflow (Some i);
          exec_block frame body)
        idxs
  | Tast.Set_register (r, e) ->
      Env.set_register frame.env r (as_int (eval frame e))
  | Tast.Push (s, p) -> (
      match (as_subflow (eval frame s), as_packet (eval frame p)) with
      | Some i, Some pkt ->
          Env.emit_push frame.env
            ~sbf_id:(subflow_view frame i).Subflow_view.id pkt
      | _, _ -> () (* graceful: PUSH on NULL is a no-op *))
  | Tast.Drop e -> (
      match as_packet (eval frame e) with
      | Some pkt -> Env.emit_drop frame.env pkt
      | None -> ())
  | Tast.Return -> raise Returned

and exec_block frame b = List.iter (exec_stmt frame) b

(** Execute one scheduler invocation: evaluates the program body against
    [env] (which must have been prepared with {!Env.begin_execution}).
    Actions are buffered in [env]; the caller collects them with
    {!Env.finish_execution}. *)
let run (p : Tast.program) (env : Env.t) =
  let frame = { env; slots = Array.make (max 1 p.Tast.num_slots) (Vint 0) } in
  try exec_block frame p.Tast.body with Returned -> ()
