(** The extended scheduling API (paper §3.2, Figs. 7–8): the
    application-facing handle through which schedulers are loaded and
    selected per connection, scheduling intents are signalled through
    registers, and outgoing data is annotated with per-packet
    properties. *)

type socket = {
  sock_name : string;
  env : Env.t;
  mutable scheduler : Scheduler.t;
  mutable default_props : int array;
      (** properties stamped on packets created from subsequent writes *)
}

exception Api_error of string

val default_scheduler_source : string
(** The paper's default scheduler (min-RTT, reinjections first, backup
    semantics), installed on fresh sockets. *)

val create : ?name:string -> unit -> socket

val load_scheduler : string -> name:string -> unit
(** Compile [spec] and register it for {!set_scheduler}.
    @raise Api_error when the specification does not compile. *)

val set_scheduler : socket -> string -> unit
(** Select a previously loaded scheduler for this connection.
    @raise Api_error when no scheduler of that name is loaded. *)

val set_register : socket -> int -> int -> unit
(** Set scheduler register [reg] (0-based, R1..R6).
    @raise Api_error on an out-of-range register. *)

val get_register : socket -> int -> int

val set_packet_property : socket -> prop:int -> int -> unit
(** Set a default per-packet property (0-based, PROP1..PROP4): data
    written afterwards carries it. @raise Api_error out of range. *)

val current_packet_props : socket -> int array

val scheduler_name : socket -> string
