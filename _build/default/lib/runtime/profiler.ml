(** Scheduler profiling — the analogue of the paper's proc-based
    debugging interface with "performance profiling traces based on the
    control flow representation of the scheduler specification" (§4.1).

    {!attach} installs an instrumented interpreter on a scheduler that
    counts, per statement of the specification, how often it executed,
    and aggregates execution counts, produced actions and wall time.
    {!report} renders the annotated control flow:

    {v
    scheduler default: 1043 executions, 0.26 ms total, 512 actions
      1043 VAR <slot 0> = ...
      1043 IF (...)
       812 . SET(R1, ...)
    v} *)

open Progmp_lang

(* The program re-shaped as an instrumented tree: every statement carries
   a stable id (pre-order) used to index the hit counters. *)
type istmt = { id : int; depth : int; label : string; node : inode }

and inode =
  | I_simple of Tast.stmt
  | I_if of Tast.expr * istmt list * istmt list
  | I_foreach of int * Tast.expr * istmt list

type t = {
  sched : Scheduler.t;
  body : istmt list;
  hits : int array;
  mutable executions : int;
  mutable actions : int;
  mutable total_time : float;  (** seconds spent inside scheduler runs *)
}

let instrument (p : Tast.program) : istmt list * int =
  let next = ref 0 in
  let fresh () =
    let id = !next in
    incr next;
    id
  in
  let rec walk depth (b : Tast.block) =
    List.map
      (fun stmt ->
        let id = fresh () in
        let mk label node = { id; depth; label; node } in
        match stmt with
        | Tast.Var_decl (slot, _) ->
            mk (Fmt.str "VAR <slot %d> = ..." slot) (I_simple stmt)
        | Tast.If (cond, then_, else_) ->
            (* bind explicitly: argument evaluation order must not decide
               the pre-order ids *)
            let t = walk (depth + 1) then_ in
            let e = walk (depth + 1) else_ in
            mk "IF (...)" (I_if (cond, t, e))
        | Tast.Foreach (slot, src, body) ->
            let b = walk (depth + 1) body in
            mk (Fmt.str "FOREACH (<slot %d> IN ...)" slot) (I_foreach (slot, src, b))
        | Tast.Set_register (r, _) ->
            mk (Fmt.str "SET(R%d, ...)" (r + 1)) (I_simple stmt)
        | Tast.Push (_, _) -> mk "PUSH(...)" (I_simple stmt)
        | Tast.Drop _ -> mk "DROP(...)" (I_simple stmt)
        | Tast.Return -> mk "RETURN" (I_simple stmt))
      b
  in
  let body = walk 0 p.Tast.body in
  (body, !next)

let rec exec_istmt t (frame : Interpreter.frame) (s : istmt) =
  t.hits.(s.id) <- t.hits.(s.id) + 1;
  match s.node with
  | I_simple stmt -> Interpreter.exec_stmt frame stmt
  | I_if (cond, then_, else_) ->
      if Interpreter.as_bool (Interpreter.eval frame cond) then
        List.iter (exec_istmt t frame) then_
      else List.iter (exec_istmt t frame) else_
  | I_foreach (slot, src, body) ->
      let idxs = Interpreter.as_subflows (Interpreter.eval frame src) in
      List.iter
        (fun i ->
          frame.Interpreter.slots.(slot) <- Interpreter.Vsubflow (Some i);
          List.iter (exec_istmt t frame) body)
        idxs

let run t (env : Env.t) =
  let num_slots =
    max 1 t.sched.Scheduler.program.Tast.num_slots
  in
  let frame =
    { Interpreter.env; slots = Array.make num_slots (Interpreter.Vint 0) }
  in
  let t0 = Unix.gettimeofday () in
  (try List.iter (exec_istmt t frame) t.body with Interpreter.Returned -> ());
  t.total_time <- t.total_time +. (Unix.gettimeofday () -. t0);
  t.executions <- t.executions + 1;
  t.actions <- t.actions + Env.action_count env

(** Install an instrumented (interpreting) engine on [sched] and return
    the profile handle. Profiling replaces the current engine; re-select
    a backend (e.g. [Scheduler.set_engine sched "interpreter"]) to stop
    profiling. *)
let attach (sched : Scheduler.t) : t =
  let body, count = instrument sched.Scheduler.program in
  let t =
    {
      sched;
      body;
      hits = Array.make (max 1 count) 0;
      executions = 0;
      actions = 0;
      total_time = 0.0;
    }
  in
  Scheduler.install_custom sched ~name:"profiled-interpreter" (run t);
  t

(** Render the annotated control-flow trace (the "proc file" content). *)
let report (t : t) : string =
  let buf = Buffer.create 512 in
  Buffer.add_string buf
    (Fmt.str "scheduler %s: %d executions, %.2f ms total, %d actions\n"
       t.sched.Scheduler.name t.executions (t.total_time *. 1e3) t.actions);
  let rec render (s : istmt) =
    Buffer.add_string buf
      (Fmt.str "%8d %s%s\n" t.hits.(s.id)
         (String.concat "" (List.init s.depth (fun _ -> ". ")))
         s.label);
    match s.node with
    | I_simple _ -> ()
    | I_if (_, then_, else_) ->
        List.iter render then_;
        List.iter render else_
    | I_foreach (_, _, body) -> List.iter render body
  in
  List.iter render t.body;
  Buffer.contents buf

(** Execution statistics as a tuple (executions, actions, total seconds),
    for programmatic access. *)
let stats t = (t.executions, t.actions, t.total_time)
