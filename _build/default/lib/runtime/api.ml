(** The extended scheduling API (paper §3.2, Fig. 7/8).

    This is the OCaml counterpart of the paper's Python library over
    sockopts: applications load schedulers, choose one per connection, set
    scheduler registers (scheduling intents such as a target bandwidth or
    an end-of-flow flag) and annotate outgoing data with per-packet
    properties. A {!socket} is the application-facing handle the MPTCP
    host (simulator) embeds in its meta socket. *)

type socket = {
  sock_name : string;
  env : Env.t;
  mutable scheduler : Scheduler.t;
  mutable default_props : int array;
      (** properties stamped on packets created from subsequent writes *)
}

exception Api_error of string

(** The paper's default scheduler (minimum RTT with unexhausted congestion
    window, reinjection first, backup semantics); installed on sockets
    that never call {!set_scheduler}, mirroring the kernel default. *)
let default_scheduler_source =
  {|
// reinjection queue has priority over new data
VAR candidates = SUBFLOWS.FILTER(c => !c.TSQ_THROTTLED AND !c.LOSSY);
// backup semantics (§3.4): backups carry traffic only when the
// connection has no active (non-backup) subflow at all
VAR actives = SUBFLOWS.FILTER(a => !a.IS_BACKUP);
VAR pool = candidates.FILTER(p => actives.EMPTY OR !p.IS_BACKUP);
VAR open = pool.FILTER(o => o.CWND > o.SKBS_IN_FLIGHT + o.QUEUED);
IF (!RQ.EMPTY) {
  VAR rsbf = open.MIN(r => r.RTT);
  IF (rsbf != NULL) { rsbf.PUSH(RQ.POP()); }
} ELSE {
  IF (!Q.EMPTY) {
    VAR sbf = open.MIN(m => m.RTT);
    IF (sbf != NULL) { sbf.PUSH(Q.POP()); }
  }
}
|}

let default_scheduler =
  lazy (Scheduler.load ~name:"default" default_scheduler_source)

let create ?(name = "socket") () =
  {
    sock_name = name;
    env = Env.create ();
    scheduler = Lazy.force default_scheduler;
    default_props = Array.make Progmp_lang.Props.num_user_props 0;
  }

(** [load_scheduler spec name] compiles [spec] and registers it under
    [name] for later {!set_scheduler} calls by any connection.
    @raise Api_error when the specification does not compile. *)
let load_scheduler spec ~name =
  try ignore (Scheduler.load ~name spec)
  with Scheduler.Load_error msg -> raise (Api_error msg)

(** Select a previously loaded scheduler for this connection. Following
    the paper's advice, switching schedulers mid-connection is allowed but
    registers are the preferred way to change behaviour at runtime. *)
let set_scheduler sock name =
  match Scheduler.find name with
  | Some s -> sock.scheduler <- s
  | None -> raise (Api_error (Fmt.str "scheduler %s is not loaded" name))

(** Set scheduler register [reg] (0-based, R1..R6) for this connection. *)
let set_register sock reg value =
  if reg < 0 || reg >= Progmp_lang.Props.num_registers then
    raise (Api_error (Fmt.str "no such register R%d" (reg + 1)));
  Env.set_register sock.env reg value

let get_register sock reg = Env.get_register sock.env reg

(** Set a default per-packet property: data written after this call is
    annotated with [value] in PROP[i+1] (cf. the HTTP/2-aware web server
    marking content types, §5.5). *)
let set_packet_property sock ~prop value =
  if prop < 0 || prop >= Progmp_lang.Props.num_user_props then
    raise (Api_error (Fmt.str "no such packet property PROP%d" (prop + 1)));
  sock.default_props.(prop) <- value

let current_packet_props sock = Array.copy sock.default_props

let scheduler_name sock = sock.scheduler.Scheduler.name
