(** First-class execution-engine layer (paper §4.1, Table 3).

    An {e engine} is a named way of turning a checked scheduler program
    into an executable decision function [Env.t -> unit]. The registry
    makes the backends interchangeable and discoverable by name: the
    interpreter and the AOT closure compiler register themselves here,
    and [Progmp_compiler] adds the eBPF-style VM at link time. All
    backend selection — CLIs, benchmarks, differential tests, the
    simulator — goes through this one registry.

    Instantiation is cached: when the caller provides the source digest
    of the program, compiling the same specification for the same
    engine a second time (e.g. N connections loading one zoo scheduler)
    reuses the first compilation. *)

type caps = {
  compiled : bool;
      (** runs translated code rather than walking the typed IR *)
  verified : bool;
      (** passes through a load-time verifier before running *)
  description : string;
}

type factory = Progmp_lang.Tast.program -> Env.t -> unit
(** Translate once; the returned decision function runs many times. *)

type t = { engine_name : string; caps : caps; factory : factory }

exception Unknown of string
(** Raised by {!get}/{!instantiate} with a message naming the unknown
    engine and listing the registered ones. *)

val register : ?caps:caps -> string -> factory -> unit
(** [register name factory] (re-)registers an engine. Replaces any
    previous registration of the same name (idempotent). *)

val find : string -> t option

val get : string -> t
(** @raise Unknown when no engine of that name is registered. *)

val names : unit -> string list
(** Registered engine names, sorted (deterministic listings). *)

val all : unit -> t list
(** Registered engines, sorted by name. *)

val instantiate : ?digest:string -> string -> factory
(** [instantiate ?digest name program] builds the decision function
    with engine [name]. With [digest] (the source digest of [program])
    the result is memoized per (engine, digest): repeated loads of the
    same source share one compilation.
    @raise Unknown when no engine of that name is registered. *)

val cache_stats : unit -> int * int
(** (hits, misses) of the instantiation cache, for tests and metrics. *)
