lib/runtime/subflow_view.ml: Fmt Packet Progmp_lang
