lib/runtime/action.mli: Format Packet
