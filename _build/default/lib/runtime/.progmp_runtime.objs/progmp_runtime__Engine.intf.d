lib/runtime/engine.mli: Env Progmp_lang
