lib/runtime/scheduler.ml: Digest Engine Env Fmt Hashtbl List Progmp_lang
