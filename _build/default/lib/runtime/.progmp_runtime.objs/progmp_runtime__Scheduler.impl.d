lib/runtime/scheduler.ml: Aot Env Fmt Hashtbl Interpreter List Progmp_lang
