lib/runtime/source_gen.ml: Array Buffer Fmt List Progmp_lang Props String Tast Ty
