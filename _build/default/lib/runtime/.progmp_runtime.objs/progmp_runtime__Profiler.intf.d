lib/runtime/profiler.mli: Progmp_lang Scheduler
