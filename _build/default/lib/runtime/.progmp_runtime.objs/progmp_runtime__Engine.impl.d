lib/runtime/engine.ml: Aot Env Fmt Hashtbl Interpreter List Progmp_lang String
