lib/runtime/pqueue.mli: Format Packet
