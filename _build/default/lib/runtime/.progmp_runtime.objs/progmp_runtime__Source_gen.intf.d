lib/runtime/source_gen.mli: Progmp_lang
