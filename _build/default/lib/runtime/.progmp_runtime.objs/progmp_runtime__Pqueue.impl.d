lib/runtime/pqueue.ml: Array Fmt List Packet
