lib/runtime/interpreter.ml: Array Env Fun List Option Packet Pqueue Progmp_lang Props Subflow_view Tast Ty
