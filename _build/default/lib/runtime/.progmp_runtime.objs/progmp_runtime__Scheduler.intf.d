lib/runtime/scheduler.mli: Action Env Progmp_lang Subflow_view
