lib/runtime/aot.ml: Array Env Fun Interpreter List Option Packet Pqueue Progmp_lang Props Subflow_view Tast Ty
