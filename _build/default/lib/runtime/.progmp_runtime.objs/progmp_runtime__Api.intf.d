lib/runtime/api.mli: Env Scheduler
