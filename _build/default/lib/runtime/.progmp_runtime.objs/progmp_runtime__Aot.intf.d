lib/runtime/aot.mli: Env Progmp_lang
