lib/runtime/action.ml: Fmt Packet
