lib/runtime/interpreter.mli: Env Packet Progmp_lang
