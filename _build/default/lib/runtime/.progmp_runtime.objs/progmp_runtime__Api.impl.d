lib/runtime/api.ml: Array Env Fmt Lazy Progmp_lang Scheduler
