lib/runtime/packet.mli: Format
