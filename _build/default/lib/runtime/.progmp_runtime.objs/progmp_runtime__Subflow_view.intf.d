lib/runtime/subflow_view.mli: Format Packet Progmp_lang
