lib/runtime/env.ml: Action Array List Packet Pqueue Progmp_lang Subflow_view
