lib/runtime/env.ml: Action Array Hashtbl Packet Pqueue Progmp_lang Subflow_view
