lib/runtime/env.mli: Action Hashtbl Packet Pqueue Progmp_lang Subflow_view
