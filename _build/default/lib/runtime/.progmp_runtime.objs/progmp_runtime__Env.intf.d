lib/runtime/env.mli: Action Packet Pqueue Progmp_lang Subflow_view
