lib/runtime/packet.ml: Array Fmt Progmp_lang
