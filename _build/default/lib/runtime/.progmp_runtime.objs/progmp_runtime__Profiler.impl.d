lib/runtime/profiler.ml: Array Buffer Env Fmt Interpreter List Progmp_lang Scheduler String Tast Unix
