(** Scheduler profiling — the analogue of the paper's proc-based
    debugging interface with control-flow profiling traces (§4.1). *)

type istmt = { id : int; depth : int; label : string; node : inode }

and inode =
  | I_simple of Progmp_lang.Tast.stmt
  | I_if of Progmp_lang.Tast.expr * istmt list * istmt list
  | I_foreach of int * Progmp_lang.Tast.expr * istmt list

type t = {
  sched : Scheduler.t;
  body : istmt list;
  hits : int array;  (** per-statement execution counts, pre-order ids *)
  mutable executions : int;
  mutable actions : int;
  mutable total_time : float;  (** seconds spent inside scheduler runs *)
}

val attach : Scheduler.t -> t
(** Install an instrumented interpreting engine on the scheduler and
    return the profile handle. Re-install another backend to stop
    profiling. *)

val report : t -> string
(** The annotated control-flow trace (the "proc file" content). *)

val stats : t -> int * int * float
(** (executions, actions, total seconds). *)
