(** Scheduler actions.

    The runtime decouples the evaluation of a scheduler program from the
    actual packet transmission with an action queue (paper §4.1): during
    execution, [PUSH] and [DROP] only append actions; the host applies
    them afterwards. This keeps subflow and packet properties immutable
    during an execution and lets the host handle subflows that ceased to
    exist without losing packets. *)

type t =
  | Push of { sbf_id : int; pkt : Packet.t }
      (** transmit [pkt] on the subflow with id [sbf_id] *)
  | Drop of Packet.t
      (** the program explicitly discarded the packet from the sending
          queue *)

let pp ppf = function
  | Push { sbf_id; pkt } -> Fmt.pf ppf "PUSH(sbf#%d, %a)" sbf_id Packet.pp pkt
  | Drop pkt -> Fmt.pf ppf "DROP(%a)" Packet.pp pkt

let equal a b =
  match (a, b) with
  | Push { sbf_id = s1; pkt = p1 }, Push { sbf_id = s2; pkt = p2 } ->
      s1 = s2 && p1.Packet.id = p2.Packet.id
  | Drop p1, Drop p2 -> p1.Packet.id = p2.Packet.id
  | Push _, Drop _ | Drop _, Push _ -> false
