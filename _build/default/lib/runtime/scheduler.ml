(** Scheduler loading, registry and execution.

    A {e scheduler} is a checked program plus an execution engine. Loaded
    schedulers are kept in a global registry so applications can reuse
    them by name without re-compilation (paper §3.2, "Choosing a
    Scheduler"). Engines are interchangeable: the interpreter (default),
    the AOT closure backend, or the eBPF-style VM installed by
    [Progmp_compiler] through {!set_engine}. *)

type engine = Interpret | Aot | Custom of string

type t = {
  name : string;
  program : Progmp_lang.Tast.program;
  mutable engine_name : engine;
  mutable run : Env.t -> unit;
}

exception Load_error of string

let describe_error = function
  | Progmp_lang.Lexer.Error (m, loc) ->
      Some (Fmt.str "lexical error at %a: %s" Progmp_lang.Loc.pp loc m)
  | Progmp_lang.Parser.Error (m, loc) ->
      Some (Fmt.str "syntax error at %a: %s" Progmp_lang.Loc.pp loc m)
  | Progmp_lang.Typecheck.Error (m, loc) ->
      Some (Fmt.str "type error at %a: %s" Progmp_lang.Loc.pp loc m)
  | _ -> None

(** Compile a specification into a scheduler with the interpreter engine.
    @raise Load_error with a located message when the spec is invalid. *)
let of_source ~name src =
  let program =
    try Progmp_lang.Optimize.program (Progmp_lang.Typecheck.compile_source src)
    with e -> (
      match describe_error e with
      | Some msg -> raise (Load_error (Fmt.str "scheduler %s: %s" name msg))
      | None -> raise e)
  in
  {
    name;
    program;
    engine_name = Interpret;
    run = (fun env -> Interpreter.run program env);
  }

let use_aot t =
  t.run <- Aot.compile t.program;
  t.engine_name <- Aot

let set_engine t ~name run =
  t.run <- run;
  t.engine_name <- Custom name

let engine_label t =
  match t.engine_name with
  | Interpret -> "interpreter"
  | Aot -> "aot"
  | Custom n -> n

(* Global registry of loaded schedulers, keyed by name. *)
let registry : (string, t) Hashtbl.t = Hashtbl.create 16

let load ~name src =
  let t = of_source ~name src in
  Hashtbl.replace registry name t;
  t

let find name = Hashtbl.find_opt registry name

let loaded_names () = Hashtbl.fold (fun k _ acc -> k :: acc) registry []

(** Run one scheduler execution against [env] with the given subflow
    snapshot; returns the produced actions. *)
let execute t (env : Env.t) ~subflows =
  Env.begin_execution env ~subflows;
  t.run env;
  Env.finish_execution env

(** Compressed execution (paper §4.1): rather than triggering the
    scheduler once per event, keep re-executing while it makes progress,
    bounded by [max_rounds]. [apply] must apply each round's actions to
    the host state and [snapshot] must return fresh subflow views (so
    that e.g. QUEUED reflects earlier rounds and congestion-window checks
    eventually stop the loop). Returns all actions in order. *)
let execute_compressed ?(max_rounds = 64) t (env : Env.t) ~snapshot ~apply =
  let rec go rounds acc =
    if rounds >= max_rounds then List.concat (List.rev acc)
    else
      let actions = execute t env ~subflows:(snapshot ()) in
      if actions = [] then List.concat (List.rev acc)
      else begin
        List.iter apply actions;
        go (rounds + 1) (actions :: acc)
      end
  in
  go 0 []
