(** Scheduler actions. The runtime decouples program evaluation from
    packet transmission with an action queue (paper §4.1): [PUSH] and
    [DROP] append actions during execution; the host applies them
    afterwards, keeping properties immutable per execution and handling
    vanished subflows without packet loss. *)

type t =
  | Push of { sbf_id : int; pkt : Packet.t }
      (** transmit [pkt] on the subflow with id [sbf_id] *)
  | Drop of Packet.t
      (** the program explicitly discarded the packet from its queue *)

val pp : Format.formatter -> t -> unit

val equal : t -> t -> bool
(** Structural equality up to packet identity. *)
