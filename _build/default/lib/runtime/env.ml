(** The scheduling environment a program executes against.

    Holds the three queues of the model (Q, QU, RQ), the per-execution
    subflow snapshots, the register file, and the action buffer filled by
    [PUSH]/[DROP]. Both execution backends (the {!Interpreter} and the
    compiled {!Progmp_compiler.Vm}) operate on this same structure, which is
    what makes their differential testing meaningful. *)

type t = {
  q : Pqueue.t;  (** sending queue: data from the application *)
  qu : Pqueue.t;  (** unacknowledged packets in flight *)
  rq : Pqueue.t;  (** reinjection queue: suspected-lost packets *)
  mutable subflows : Subflow_view.t array;  (** snapshot for this execution *)
  registers : int array;  (** R1..R6, persistent across executions *)
  mutable actions : Action.t list;  (** reversed action buffer *)
  mutable popped : (Pqueue.t * Packet.t) list;
      (** packets popped during the current execution, with their source
          queue (most recent first) *)
}

let create () =
  {
    q = Pqueue.create ~name:"Q" ();
    qu = Pqueue.create ~name:"QU" ();
    rq = Pqueue.create ~name:"RQ" ();
    subflows = [||];
    registers = Array.make Progmp_lang.Props.num_registers 0;
    actions = [];
    popped = [];
  }

let queue t : Progmp_lang.Ast.queue_id -> Pqueue.t = function
  | Send_queue -> t.q
  | Unacked_queue -> t.qu
  | Reinject_queue -> t.rq

let subflow_by_id t id =
  let n = Array.length t.subflows in
  let rec find i =
    if i >= n then None
    else if t.subflows.(i).Subflow_view.id = id then Some t.subflows.(i)
    else find (i + 1)
  in
  find 0

let get_register t i =
  if i < 0 || i >= Array.length t.registers then 0 else t.registers.(i)

let set_register t i v =
  if i >= 0 && i < Array.length t.registers then t.registers.(i) <- v

(** Record a [POP]: the packet has been removed from [src]; unless a
    subsequent PUSH or DROP handles it, {!finish_execution} returns it to
    the front of its source queue so that no packet is ever lost
    (paper §3.3). *)
let record_pop t src pkt = t.popped <- (src, pkt) :: t.popped

let emit_push t ~sbf_id pkt = t.actions <- Action.Push { sbf_id; pkt } :: t.actions

let emit_drop t pkt = t.actions <- Action.Drop pkt :: t.actions

let begin_execution t ~subflows =
  t.subflows <- subflows;
  t.actions <- [];
  t.popped <- []

(** Finish one scheduler execution: returns the actions in program order
    after re-inserting packets that were popped but neither pushed nor
    dropped (in their original order, at the front of Q). *)
let finish_execution t =
  let actions = List.rev t.actions in
  let handled p =
    List.exists
      (function
        | Action.Push { pkt; _ } -> pkt.Packet.id = p.Packet.id
        | Action.Drop pkt -> pkt.Packet.id = p.Packet.id)
      actions
  in
  (* [t.popped] is most-recent-first; iterating in that order and pushing
     each orphan to the front restores the original queue order. *)
  List.iter
    (fun (src, p) -> if not (handled p) then Pqueue.push_front src p)
    t.popped;
  t.popped <- [];
  t.actions <- [];
  actions
