(** The scheduling environment a program executes against: the three
    queues of the model (Q, QU, RQ), the per-execution subflow
    snapshots, the persistent register file, and the action buffer.
    Both execution backends operate on this same structure. *)

type t = {
  q : Pqueue.t;  (** sending queue: data from the application *)
  qu : Pqueue.t;  (** unacknowledged packets in flight *)
  rq : Pqueue.t;  (** reinjection queue: suspected-lost packets *)
  mutable subflows : Subflow_view.t array;
  registers : int array;  (** R1..R6, persistent across executions *)
  mutable actions : Action.t list;  (** reversed action buffer *)
  mutable popped : (Pqueue.t * Packet.t) list;
      (** packets popped during the current execution, with their source
          queue (most recent first) *)
}

val create : unit -> t

val queue : t -> Progmp_lang.Ast.queue_id -> Pqueue.t

val subflow_by_id : t -> int -> Subflow_view.t option

val get_register : t -> int -> int
(** Out-of-range registers read 0. *)

val set_register : t -> int -> int -> unit
(** Out-of-range writes are ignored. *)

val record_pop : t -> Pqueue.t -> Packet.t -> unit
(** Note a [POP]; unless a later PUSH/DROP handles the packet,
    {!finish_execution} restores it to the front of its source queue. *)

val emit_push : t -> sbf_id:int -> Packet.t -> unit

val emit_drop : t -> Packet.t -> unit

val begin_execution : t -> subflows:Subflow_view.t array -> unit

val finish_execution : t -> Action.t list
(** Actions in program order, after restoring orphaned pops. *)
