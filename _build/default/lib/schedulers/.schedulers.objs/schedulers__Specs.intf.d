lib/schedulers/specs.mli: Progmp_runtime
