lib/schedulers/native.mli: Progmp_runtime
