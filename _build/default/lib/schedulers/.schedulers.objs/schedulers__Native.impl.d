lib/schedulers/native.ml: Array Env List Packet Pqueue Progmp_runtime Scheduler Subflow_view
