lib/schedulers/specs.ml: List Progmp_runtime
