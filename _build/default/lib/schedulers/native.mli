(** Hand-written OCaml schedulers — the counterpart of the paper's
    in-kernel C implementations, used as the Fig. 9 overhead baseline
    and as semantic oracles in the differential tests. Each engine
    implements exactly the policy of its {!Specs} counterpart. *)

val default : Progmp_runtime.Env.t -> unit

val round_robin : Progmp_runtime.Env.t -> unit
(** Cursor in register R3, like the spec, so the two variants are
    interchangeable mid-connection. *)

val redundant_if_no_q : Progmp_runtime.Env.t -> unit

val install : Progmp_runtime.Scheduler.t -> (Progmp_runtime.Env.t -> unit) -> unit
(** Install a native engine on a loaded scheduler. *)
