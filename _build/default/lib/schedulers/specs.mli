(** The scheduler zoo: ProgMP specifications of every scheduler the paper
    discusses — the mainline ones it revisits (§3.4), the novel ones it
    contributes (§5), and design-space variants from Table 2.

    Register conventions: R1 carries the application intent value
    (target bandwidth in bytes/s, tolerable RTT in µs, or a mode flag
    depending on the scheduler); R2 is the end-of-flow signal for the
    compensating family; R3 is scheduler-owned scratch (e.g. the
    round-robin cursor); R4 is TAP-family scratch. *)

val default : string
(** §3.4: min-RTT with free congestion window, reinjections first,
    backup subflows only when no active subflow exists. *)

val minrtt_minimal : string
(** Fig. 3: the minimal illustrative min-RTT scheduler. *)

val round_robin : string
(** Fig. 5: cyclic cursor in R3, work-conserving on the congestion
    window, skipping TSQ-throttled and lossy subflows. *)

val redundant : string
(** Fig. 10a: the existing fully-redundant scheduler [17, 32]. *)

val opportunistic_redundant : string
(** §5.1: redundancy only when a packet is first scheduled. *)

val redundant_if_no_q : string
(** §5.1: fresh packets always first; redundancy only on an empty Q. *)

val compensating : string
(** §5.3: retransmit in-flight packets cross-subflow at the signalled
    end of flow (R2 = 1). *)

val selective_compensation : string
(** §5.3: compensate only when the subflow RTT ratio exceeds 2. *)

val tap : string
(** §5.4, Fig. 13: throughput- and preference-aware scheduler; target
    bandwidth in R1, non-preferred subflows take only the capacity
    deficit. *)

val target_rtt : string
(** §5.4: tolerable RTT in R1; non-preferred subflows rescue latency
    when every preferred subflow violates the target. *)

val target_deadline : string
(** §5.4: MP-DASH-style deadline scheduler (required rate in R1,
    recomputed by the application's control loop); TSQ-aware late
    binding. *)

val handover : string
(** §5.2: aggressive catch-up retransmission on the handover target
    subflow (id in R1). *)

val backup_redundant : string
(** Table 2: backup subflows carry redundant copies only while the
    non-backup paths look unhealthy (RTT variance, loss state). *)

val priority_redundant : string
(** §3.2: packets the application marks high-priority (PROP2 = 1) jump
    the queue and are sent redundantly on every subflow with room,
    backups included; ordinary data follows min-RTT on non-backups. *)

val flow_size_aware : string
(** Table 2: with the remaining flow size signalled in R1, the tail of
    a flow avoids slow subflows proactively. *)

val http2_aware : string
(** §5.5: content classes in PROP1 — dependency-critical data only on
    the fastest subflow, initial-view data min-RTT, below-the-fold data
    preference-aware. *)

val probing : string
(** Table 2: keep RTT estimates of idle subflows fresh with recurrent
    redundant probes. *)

val opportunistic_retransmission : string
(** §3.4: retransmit in-flight packets on the fastest subflow when the
    receive window blocks it. *)

val all : (string * string) list
(** Every named specification, for bulk loading, fuzzing and the CLI. *)

val load_all : unit -> Progmp_runtime.Scheduler.t list
(** Load the whole zoo into the runtime registry. *)
