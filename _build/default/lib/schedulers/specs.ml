(** The scheduler zoo: ProgMP specifications of every scheduler discussed
    in the paper — the mainline ones it revisits (§3.4) and the novel
    ones it contributes (§5) — plus a few design-space variants from
    Table 2.

    Register conventions used across the zoo (set through the extended
    API, {!Progmp_runtime.Api}):

    - [R1] — application intent value: target bandwidth in bytes/second
      (TAP, deadline), tolerable RTT in microseconds (target-RTT), or a
      mode flag, depending on the scheduler;
    - [R2] — end-of-flow signal (0 = more data expected, 1 = flow ends
      with the current queue content), used by the compensating family;
    - [R3] — scratch state owned by the scheduler itself (e.g. the
      round-robin cursor). *)

(** Default (minimum-RTT) scheduler, §3.4: lowest-RTT subflow with a free
    congestion window; reinjections first; backup subflows only when no
    active subflow exists. Re-exported from the API module, where it is
    the scheduler installed on fresh sockets. *)
let default = Progmp_runtime.Api.default_scheduler_source

(** Fig. 3: the minimal illustrative min-RTT scheduler. *)
let minrtt_minimal =
  {|
IF (!Q.EMPTY AND !SUBFLOWS.EMPTY) {
  SUBFLOWS.MIN(sbf => sbf.RTT).PUSH(Q.POP());
}
|}

(** Fig. 5: round robin with a cyclic cursor in R3, skipping
    TSQ-throttled and lossy subflows, work-conserving on the congestion
    window. *)
let round_robin =
  {|
VAR sbfs = SUBFLOWS.FILTER(sbf => !sbf.TSQ_THROTTLED AND !sbf.LOSSY);
IF (R3 >= sbfs.COUNT) { SET(R3, 0); }
IF (!Q.EMPTY) {
  VAR sbf = sbfs.GET(R3);
  IF (sbf != NULL) {
    IF (sbf.CWND > sbf.SKBS_IN_FLIGHT + sbf.QUEUED) {
      sbf.PUSH(Q.POP());
    }
    SET(R3, R3 + 1);
  }
}
|}

(** Fig. 10a (top): the existing redundant scheduler [17, 32]. Every
    subflow first catches up on in-flight packets it has not carried yet,
    then receives fresh data; the first received copy wins. *)
let redundant =
  {|
VAR sbfCandidates = SUBFLOWS.FILTER(sbf =>
  sbf.CWND > sbf.SKBS_IN_FLIGHT + sbf.QUEUED);
FOREACH (VAR sbf IN sbfCandidates) {
  VAR skb = QU.FILTER(s => !s.SENT_ON(sbf)).TOP;
  IF (skb != NULL) {
    sbf.PUSH(skb);
  } ELSE {
    IF (!Q.EMPTY) {
      sbf.PUSH(Q.POP());
    }
  }
}
|}

(** §5.1: OpportunisticRedundant — a packet is sent on all subflows with
    a free congestion window at the moment it is {e first} scheduled;
    afterwards fresh packets take priority over completing redundancy, so
    a filling Q gradually degrades to plain scheduling. *)
let opportunistic_redundant =
  {|
VAR sbfCandidates = SUBFLOWS.FILTER(sbf =>
  sbf.CWND > sbf.SKBS_IN_FLIGHT + sbf.QUEUED);
IF (!sbfCandidates.EMPTY AND !Q.EMPTY) {
  VAR skb = Q.TOP;
  FOREACH (VAR sbf IN sbfCandidates) {
    sbf.PUSH(skb);
  }
  DROP(Q.POP());
}
|}

(** §5.1: RedundantIfNoQ — always favour fresh packets; spend leftover
    capacity on redundant copies only while the sending queue is empty.
    Outperforms all other schedulers on short flows over lossy paths
    (Fig. 10b). *)
let redundant_if_no_q =
  {|
VAR sbfCandidates = SUBFLOWS.FILTER(sbf =>
  sbf.CWND > sbf.SKBS_IN_FLIGHT + sbf.QUEUED);
FOREACH (VAR sbf IN sbfCandidates) {
  IF (!Q.EMPTY) {
    sbf.PUSH(Q.POP());
  } ELSE {
    VAR skb = QU.FILTER(s => !s.SENT_ON(sbf)).TOP;
    IF (skb != NULL) {
      sbf.PUSH(skb);
    }
  }
}
|}

(** §5.3, Fig. 12: Compensating scheduler. Normal operation is the
    default min-RTT strategy; when the application signals the end of the
    flow (R2 = 1), previous scheduling decisions are compensated by
    retransmitting every packet still in flight on the subflows it has
    not used yet. *)
let compensating =
  {|
VAR open = SUBFLOWS.FILTER(sbf =>
  sbf.CWND > sbf.SKBS_IN_FLIGHT + sbf.QUEUED);
IF (!Q.EMPTY) {
  VAR sbf = open.MIN(m => m.RTT);
  IF (sbf != NULL) { sbf.PUSH(Q.POP()); }
} ELSE {
  IF (R2 == 1) {
    FOREACH (VAR c IN SUBFLOWS) {
      VAR skb = QU.FILTER(u => !u.SENT_ON(c)).TOP;
      IF (skb != NULL) { c.PUSH(skb); }
    }
  }
}
|}

(** §5.3, Fig. 12 (highlighted): Selective Compensation — compensate only
    when the subflow RTTs actually diverge (ratio > 2), balancing the FCT
    gain against the retransmission overhead. *)
let selective_compensation =
  {|
VAR open = SUBFLOWS.FILTER(sbf =>
  sbf.CWND > sbf.SKBS_IN_FLIGHT + sbf.QUEUED);
IF (!Q.EMPTY) {
  VAR sbf = open.MIN(m => m.RTT);
  IF (sbf != NULL) { sbf.PUSH(Q.POP()); }
} ELSE {
  IF (R2 == 1) {
    VAR fast = SUBFLOWS.MIN(f => f.RTT);
    VAR slow = SUBFLOWS.MAX(g => g.RTT);
    IF (fast != NULL AND slow.RTT > 2 * fast.RTT) {
      FOREACH (VAR c IN SUBFLOWS) {
        VAR skb = QU.FILTER(u => !u.SENT_ON(c)).TOP;
        IF (skb != NULL) { c.PUSH(skb); }
      }
    }
  }
}
|}

(** §5.4, Fig. 13: TAP — the throughput- and preference-aware scheduler.
    The application signals the required stream bandwidth (bytes/second)
    in R1. Preferred (non-backup) subflows are always used first;
    non-preferred subflows (e.g. metered LTE, flagged backup) receive a
    packet only when every preferred subflow is congestion-blocked
    {e and} the preferred capacity estimate cannot sustain the target —
    together these two gates restrict the non-preferred subflows to the
    leftover fraction of the traffic, the paper's
    (targetBw - capacityPreferred) / targetBw. *)
let tap =
  {|
VAR preferred = SUBFLOWS.FILTER(p => !p.IS_BACKUP);
// expected throughput from the congestion window and the current RTT
// (computed per scheduling decision, as in the paper): under load the
// RTT estimate inflates with the queue, so this bound tracks what the
// preferred subflows actually sustain
VAR capacityPreferred = preferred.SUM(c =>
  c.CWND * c.MSS * 1000000 / c.RTT);
VAR openPreferred = preferred.FILTER(o =>
  o.CWND > o.SKBS_IN_FLIGHT + o.QUEUED);
VAR spill = SUBFLOWS.FILTER(s => s.IS_BACKUP AND
  s.CWND > s.SKBS_IN_FLIGHT + s.QUEUED);
VAR needSpill = capacityPreferred < R1;
IF (!RQ.EMPTY) {
  // a suspected loss blocks in-order delivery and thus the throughput
  // target: reinject it on the preferred subflows if possible, on a
  // non-preferred one if the target is otherwise unreachable
  IF (!openPreferred.EMPTY) {
    openPreferred.MIN(r => r.RTT).PUSH(RQ.POP());
  } ELSE {
    IF (needSpill AND !spill.EMPTY) {
      spill.MIN(r2 => r2.RTT).PUSH(RQ.POP());
    }
  }
} ELSE {
  IF (!Q.EMPTY) {
    IF (!openPreferred.EMPTY) {
      openPreferred.MIN(m => m.RTT).PUSH(Q.POP());
    } ELSE {
      // every preferred subflow is congestion-blocked AND the preferred
      // capacity estimate cannot sustain the target: spill the leftover
      // onto the non-preferred subflows, lowest RTT first
      IF (needSpill AND !spill.EMPTY) {
        spill.MIN(n => n.RTT).PUSH(Q.POP());
      }
    }
  }
}
|}

(** §5.4: deadline-driven (MP-DASH-style) scheduler. The application's
    control loop signals the throughput required to meet the next chunk
    deadline in R1 (bytes/second, recomputed as deadlines approach; see
    [Apps.Dash]). Compared to {!tap} the preferred gate also respects the
    TSQ/loss state: data waits in Q (late binding) rather than being
    buried in a struggling preferred subflow's queue, so an approaching
    deadline can still divert it — one of the "many flavors" the
    programming model makes cheap to tune (§5.4). *)
let target_deadline =
  {|
VAR preferred = SUBFLOWS.FILTER(p => !p.IS_BACKUP);
VAR capacityPreferred = preferred.SUM(c => c.THROUGHPUT);
VAR openPreferred = preferred.FILTER(o =>
  !o.TSQ_THROTTLED AND !o.LOSSY AND
  o.CWND > o.SKBS_IN_FLIGHT + o.QUEUED);
VAR spill = SUBFLOWS.FILTER(s => s.IS_BACKUP AND
  s.CWND > s.SKBS_IN_FLIGHT + s.QUEUED);
VAR needSpill = capacityPreferred < R1;
IF (!RQ.EMPTY) {
  IF (!openPreferred.EMPTY) {
    openPreferred.MIN(r => r.RTT).PUSH(RQ.POP());
  } ELSE {
    IF (needSpill AND !spill.EMPTY) {
      spill.MIN(r2 => r2.RTT).PUSH(RQ.POP());
    }
  }
} ELSE {
  IF (!Q.EMPTY) {
    IF (!openPreferred.EMPTY) {
      openPreferred.MIN(m => m.RTT).PUSH(Q.POP());
    } ELSE {
      IF (needSpill AND !spill.EMPTY) {
        spill.MIN(n => n.RTT).PUSH(Q.POP());
      }
    }
  }
}
|}

(** §5.4: latency- and preference-aware scheduler — retain a tolerable
    RTT (microseconds, in R1) and resort to non-preferred subflows only
    when every preferred subflow exceeds it. *)
let target_rtt =
  {|
VAR preferred = SUBFLOWS.FILTER(p => !p.IS_BACKUP);
VAR openPreferred = preferred.FILTER(o =>
  o.CWND > o.SKBS_IN_FLIGHT + o.QUEUED);
VAR fastEnough = openPreferred.FILTER(f => f.RTT <= R1);
IF (!Q.EMPTY) {
  IF (!fastEnough.EMPTY) {
    // a preferred subflow meets the target: preferences win
    fastEnough.MIN(m => m.RTT).PUSH(Q.POP());
  } ELSE {
    // no preferred subflow can retain the target RTT: fall back to the
    // globally fastest open subflow, backup or not
    VAR any = SUBFLOWS.FILTER(a =>
      a.CWND > a.SKBS_IN_FLIGHT + a.QUEUED);
    VAR fallback = any.MIN(b => b.RTT);
    IF (fallback != NULL) { fallback.PUSH(Q.POP()); }
  }
}
|}

(** §5.2: handover-aware scheduler. R1 = the subflow id of the handover
    target. In handover mode the scheduler aggressively reinjects: all
    packets in flight that the target subflow has not carried are
    retransmitted on it, compensating losses on the dying subflow. *)
let handover =
  {|
VAR target = SUBFLOWS.FILTER(t => t.ID == R1);
IF (!target.EMPTY) {
  VAR nsbf = target.GET(0);
  VAR skb = QU.FILTER(u => !u.SENT_ON(nsbf)).TOP;
  IF (skb != NULL) {
    nsbf.PUSH(skb);
  } ELSE {
    IF (!RQ.EMPTY) {
      nsbf.PUSH(RQ.POP());
    } ELSE {
      IF (!Q.EMPTY) { nsbf.PUSH(Q.POP()); }
    }
  }
} ELSE {
  VAR open = SUBFLOWS.FILTER(sbf =>
    sbf.CWND > sbf.SKBS_IN_FLIGHT + sbf.QUEUED);
  VAR sbf2 = open.MIN(m => m.RTT);
  IF (sbf2 != NULL AND !Q.EMPTY) { sbf2.PUSH(Q.POP()); }
}
|}

(** §5.5, Fig. 14: HTTP/2-aware scheduler. The MPTCP-aware web server
    annotates packets with their content class in PROP1:
    1 = dependency-critical head (HTML/JS that references external
    resources), 2 = remaining initial-view content, 3 = content below the
    initial view. Critical packets avoid high-RTT subflows (they wait for
    the fastest subflow); initial-view content uses the default min-RTT
    strategy; below-the-fold content is preference-aware and stays off
    non-preferred (metered) subflows entirely. *)
let http2_aware =
  {|
VAR open = SUBFLOWS.FILTER(sbf =>
  sbf.CWND > sbf.SKBS_IN_FLIGHT + sbf.QUEUED);
VAR fastest = SUBFLOWS.MIN(f => f.RTT);
VAR crit = Q.FILTER(c => c.PROP1 == 1).TOP;
IF (crit != NULL) {
  // dependency-critical data: only ever on the lowest-RTT subflow
  IF (fastest != NULL) {
    IF (fastest.CWND > fastest.SKBS_IN_FLIGHT + fastest.QUEUED) {
      fastest.PUSH(Q.FILTER(d => d.PROP1 == 1).POP());
    }
  }
} ELSE {
  VAR initial = Q.FILTER(i => i.PROP1 == 2).TOP;
  IF (initial != NULL) {
    VAR sbf = open.MIN(m => m.RTT);
    IF (sbf != NULL) { sbf.PUSH(Q.FILTER(j => j.PROP1 == 2).POP()); }
  } ELSE {
    // below-the-fold content: preference-aware, metered subflows avoided
    VAR openPreferred = open.FILTER(p => !p.IS_BACKUP);
    VAR psbf = openPreferred.MIN(n => n.RTT);
    IF (psbf != NULL AND !Q.EMPTY) { psbf.PUSH(Q.POP()); }
  }
}
|}

(** Table 2 (Redundancy with preferences): use backup subflows for
    redundancy only while the non-backup subflows look unhealthy — high
    RTT variance relative to the average, or recent losses. Fresh data
    still goes to the preferred subflows min-RTT; the backups carry
    only duplicate copies, so the extra cost buys pure insurance. *)
let backup_redundant =
  {|
VAR actives = SUBFLOWS.FILTER(a => !a.IS_BACKUP);
VAR openActives = actives.FILTER(o =>
  o.CWND > o.SKBS_IN_FLIGHT + o.QUEUED);
IF (!Q.EMPTY) {
  VAR sbf = openActives.MIN(m => m.RTT);
  IF (sbf != NULL) { sbf.PUSH(Q.POP()); }
}
// insurance: non-backup path looks shaky when the RTT variance exceeds
// a quarter of the average RTT, or it is in loss recovery
VAR shaky = actives.FILTER(sh =>
  4 * sh.RTT_VAR > sh.RTT_AVG OR sh.LOSSY OR sh.LOST_SKBS > 0);
IF (!shaky.EMPTY) {
  VAR insurers = SUBFLOWS.FILTER(i => i.IS_BACKUP AND
    i.CWND > i.SKBS_IN_FLIGHT + i.QUEUED);
  FOREACH (VAR b IN insurers) {
    VAR skb = QU.FILTER(u => !u.SENT_ON(b)).TOP;
    IF (skb != NULL) { b.PUSH(skb); }
  }
}
|}

(** Table 2 (Heterogeneous subflows, "flow size signaled / avoid slow
    subflow at end of flow"): the application keeps R1 updated with the
    bytes remaining in the current flow; while plenty remains, schedule
    min-RTT over all subflows, but once the remainder is small enough
    that the slow subflow's extra RTT would dominate the FCT, place the
    tail only on the fastest subflow. The proactive sibling of the
    (reactive) Compensating scheduler. *)
let flow_size_aware =
  {|
VAR open = SUBFLOWS.FILTER(sbf =>
  sbf.CWND > sbf.SKBS_IN_FLIGHT + sbf.QUEUED);
VAR fast = SUBFLOWS.MIN(f => f.RTT);
IF (!Q.EMPTY AND fast != NULL) {
  // tail threshold: what the fastest subflow can carry in one window
  IF (R1 <= fast.CWND * fast.MSS) {
    IF (fast.CWND > fast.SKBS_IN_FLIGHT + fast.QUEUED) {
      fast.PUSH(Q.POP());
    }
  } ELSE {
    VAR sbf = open.MIN(m => m.RTT);
    IF (sbf != NULL) { sbf.PUSH(Q.POP()); }
  }
}
|}

(** §3.2 (packet properties): priority-aware redundancy. The extended
    API marks latency-critical packets with PROP2 = 1 (e.g. a database's
    small requests, the paper's motivating example): those are pulled
    out of the queue ahead of bulk data and sent redundantly on every
    subflow with room — backups included. Ordinary packets follow the
    default min-RTT strategy on non-backup subflows. *)
let priority_redundant =
  {|
VAR prio = Q.FILTER(c => c.PROP2 == 1).TOP;
IF (prio != NULL) {
  VAR open = SUBFLOWS.FILTER(o =>
    o.CWND > o.SKBS_IN_FLIGHT + o.QUEUED);
  IF (!open.EMPTY) {
    VAR skb = Q.FILTER(d => d.PROP2 == 1).POP();
    FOREACH (VAR sbf IN open) {
      sbf.PUSH(skb);
    }
  }
} ELSE {
  VAR actives = SUBFLOWS.FILTER(a => !a.IS_BACKUP AND
    a.CWND > a.SKBS_IN_FLIGHT + a.QUEUED);
  VAR best = actives.MIN(m => m.RTT);
  IF (best != NULL AND !Q.EMPTY) { best.PUSH(Q.POP()); }
}
|}

(** Table 2 (Probing): keep RTT estimates of otherwise idle subflows
    fresh by recurrently sending one redundant copy on subflows that
    carry no traffic. R3 counts executions; every 64th execution probes. *)
let probing =
  {|
VAR open = SUBFLOWS.FILTER(sbf =>
  sbf.CWND > sbf.SKBS_IN_FLIGHT + sbf.QUEUED);
IF (!Q.EMPTY) {
  VAR sbf = open.MIN(m => m.RTT);
  IF (sbf != NULL) { sbf.PUSH(Q.POP()); }
}
SET(R3, R3 + 1);
IF (R3 >= 64) {
  SET(R3, 0);
  VAR idle = SUBFLOWS.FILTER(i => i.SKBS_IN_FLIGHT == 0 AND i.QUEUED == 0);
  IF (!idle.EMPTY) {
    VAR probe = QU.TOP;
    IF (probe != NULL) { idle.GET(0).PUSH(probe); }
  }
}
|}

(** §3.4 (Opportunistic Retransmission): when the receive window blocks
    the fastest subflow, retransmit in-flight packets from slower
    subflows on it instead of idling. *)
let opportunistic_retransmission =
  {|
VAR open = SUBFLOWS.FILTER(sbf =>
  sbf.CWND > sbf.SKBS_IN_FLIGHT + sbf.QUEUED);
VAR minRttSbf = open.MIN(m => m.RTT);
IF (minRttSbf != NULL) {
  IF (!Q.EMPTY) {
    IF (minRttSbf.HAS_WINDOW_FOR(Q.TOP)) {
      minRttSbf.PUSH(Q.POP());
    } ELSE {
      VAR skb = QU.FILTER(u => !u.SENT_ON(minRttSbf)).TOP;
      IF (skb != NULL) { minRttSbf.PUSH(skb); }
    }
  }
}
|}

(** All named specifications, for bulk loading, fuzzing and the CLI. *)
let all =
  [
    ("default", default);
    ("minrtt_minimal", minrtt_minimal);
    ("round_robin", round_robin);
    ("redundant", redundant);
    ("opportunistic_redundant", opportunistic_redundant);
    ("redundant_if_no_q", redundant_if_no_q);
    ("compensating", compensating);
    ("selective_compensation", selective_compensation);
    ("tap", tap);
    ("target_rtt", target_rtt);
    ("target_deadline", target_deadline);
    ("handover", handover);
    ("backup_redundant", backup_redundant);
    ("priority_redundant", priority_redundant);
    ("flow_size_aware", flow_size_aware);
    ("http2_aware", http2_aware);
    ("probing", probing);
    ("opportunistic_retransmission", opportunistic_retransmission);
  ]

(** Load every scheduler of the zoo into the runtime registry. *)
let load_all () =
  List.map (fun (name, src) -> Progmp_runtime.Scheduler.load ~name src) all
