(** Hand-written OCaml schedulers — the counterpart of the paper's
    in-kernel C implementations, used as the baseline in the overhead
    evaluation (Fig. 9) and as semantic oracles in the differential test
    suite. Each function is a decision function compatible with
    {!Progmp_runtime.Scheduler.install_custom} and implements exactly the
    same policy as the corresponding spec in {!Specs}. *)

open Progmp_runtime

let minrtt_of views =
  match views with
  | [] -> None
  | v :: rest ->
      Some
        (List.fold_left
           (fun best (v : Subflow_view.t) ->
             if v.Subflow_view.rtt_us < best.Subflow_view.rtt_us then v else best)
           v rest)

let window_open (v : Subflow_view.t) =
  v.Subflow_view.cwnd > v.Subflow_view.skbs_in_flight + v.Subflow_view.queued

(** The default min-RTT scheduler (same policy as {!Specs.default}):
    skip TSQ-throttled and lossy subflows, use backups only when no
    active subflow exists, prefer the reinjection queue, pick the open
    subflow with the lowest RTT. *)
let default (env : Env.t) =
  let views = Array.to_list env.Env.subflows in
  let candidates =
    List.filter
      (fun (v : Subflow_view.t) ->
        (not v.Subflow_view.tsq_throttled) && not v.Subflow_view.lossy)
      views
  in
  let actives =
    List.filter (fun (v : Subflow_view.t) -> not v.Subflow_view.is_backup) views
  in
  let pool =
    if actives = [] then candidates
    else
      List.filter (fun (v : Subflow_view.t) -> not v.Subflow_view.is_backup) candidates
  in
  let open_sbfs = List.filter window_open pool in
  match minrtt_of open_sbfs with
  | None -> ()
  | Some target ->
      let queue =
        if not (Pqueue.is_empty env.Env.rq) then Some env.Env.rq
        else if not (Pqueue.is_empty env.Env.q) then Some env.Env.q
        else None
      in
      (match queue with
      | Some q -> (
          match Pqueue.pop_front q with
          | Some pkt ->
              Env.record_pop env q pkt;
              Env.emit_push env ~sbf_id:target.Subflow_view.id pkt
          | None -> ())
      | None -> ())

(** Native round robin (same policy as {!Specs.round_robin}; the cursor
    lives in scheduler register R3, exactly like the spec, so both
    variants are interchangeable mid-connection). *)
let round_robin (env : Env.t) =
  let views = Array.to_list env.Env.subflows in
  let sbfs =
    List.filter
      (fun (v : Subflow_view.t) ->
        (not v.Subflow_view.tsq_throttled) && not v.Subflow_view.lossy)
      views
  in
  let cursor = Env.get_register env 2 in
  let cursor = if cursor >= List.length sbfs then 0 else cursor in
  if cursor <> Env.get_register env 2 then Env.set_register env 2 cursor;
  if not (Pqueue.is_empty env.Env.q) then begin
    match List.nth_opt sbfs cursor with
    | Some v ->
        if window_open v then begin
          match Pqueue.pop_front env.Env.q with
          | Some pkt ->
              Env.record_pop env env.Env.q pkt;
              Env.emit_push env ~sbf_id:v.Subflow_view.id pkt
          | None -> ()
        end;
        Env.set_register env 2 (cursor + 1)
    | None -> ()
  end

(** Native RedundantIfNoQ (same policy as {!Specs.redundant_if_no_q}). *)
let redundant_if_no_q (env : Env.t) =
  let candidates = List.filter window_open (Array.to_list env.Env.subflows) in
  List.iter
    (fun (v : Subflow_view.t) ->
      if not (Pqueue.is_empty env.Env.q) then begin
        match Pqueue.pop_front env.Env.q with
        | Some pkt ->
            Env.record_pop env env.Env.q pkt;
            Env.emit_push env ~sbf_id:v.Subflow_view.id pkt
        | None -> ()
      end
      else begin
        let found = ref None in
        (let n = Pqueue.length env.Env.qu in
         let rec scan i =
           if i < n && !found = None then begin
             (match Pqueue.nth env.Env.qu i with
             | Some p when not (Packet.sent_on p ~sbf_id:v.Subflow_view.id) ->
                 found := Some p
             | Some _ | None -> ());
             scan (i + 1)
           end
         in
         scan 0);
        match !found with
        | Some p -> Env.emit_push env ~sbf_id:v.Subflow_view.id p
        | None -> ()
      end)
    candidates

(** Install a native engine on a loaded scheduler. *)
let install (sched : Scheduler.t) engine =
  Scheduler.install_custom sched ~name:"native" engine
