(** Log source for the simulator. Enable with, e.g.:
    [Logs.set_reporter (Logs_fmt.reporter ());
     Logs.Src.set_level Sim_log.src (Some Logs.Debug)].
    All messages are debug-level: the simulator is silent by default and
    the closures cost nothing while disabled. *)

let src = Logs.Src.create "mptcp_sim" ~doc:"MPTCP simulator events"

module Log = (val Logs.src_log src : Logs.LOG)

let debug = Log.debug
