(** Unidirectional path model: serialization at a (possibly fluctuating)
    bottleneck rate, propagation delay, optional jitter, Bernoulli loss
    and a drop-tail buffer.

    This is the stand-in for the paper's Mininet links (Figs. 10, 12) and
    for the in-the-wild WiFi/LTE paths (Figs. 1, 13, 14): the schedulers
    under study only observe path {e behaviour} (RTT, loss, rate), which
    these parameters produce. *)

type params = {
  bandwidth : float;  (** bytes per second at the bottleneck *)
  delay : float;  (** one-way propagation delay, seconds *)
  loss : float;  (** packet loss probability in [0, 1] *)
  jitter : float;  (** std-dev of gaussian delay noise, seconds *)
  buffer_bytes : int;  (** drop-tail bottleneck buffer size *)
}

let default_params =
  {
    bandwidth = 1_250_000.0 (* 10 Mbit/s *);
    delay = 0.010;
    loss = 0.0;
    jitter = 0.0;
    buffer_bytes = 256 * 1024;
  }

type t = {
  mutable params : params;
  rng : Rng.t;
  clock : Eventq.t;
  mutable busy_until : float;  (** bottleneck serialization horizon *)
  mutable delivered : int;  (** packets that made it across *)
  mutable lost : int;  (** random losses *)
  mutable tail_dropped : int;  (** buffer overflows *)
}

let create ?(params = default_params) ~clock ~rng () =
  { params; rng; clock; busy_until = 0.0; delivered = 0; lost = 0; tail_dropped = 0 }

(** Change the bottleneck rate at runtime (bandwidth fluctuation, e.g.
    the WiFi throughput dips of Fig. 13). *)
let set_bandwidth t bw = t.params <- { t.params with bandwidth = bw }

let set_delay t d = t.params <- { t.params with delay = d }

let set_loss t l = t.params <- { t.params with loss = l }

let bandwidth t = t.params.bandwidth

let delay t = t.params.delay

(** Serialization horizon: the absolute time at which everything
    currently queued at the bottleneck will have been put on the wire. *)
let busy_until t = t.busy_until

(** Bytes currently sitting in the bottleneck buffer (waiting for
    serialization), across all users of the link. *)
let backlog_bytes t =
  let pending = t.busy_until -. Eventq.now t.clock in
  if pending <= 0.0 then 0 else int_of_float (pending *. t.params.bandwidth)

type outcome = Delivered of float | Lost_random | Dropped_tail

(** Send [size] bytes over the link; on success schedules [deliver] at
    the arrival time and returns it. Loss is decided at entry (a dropped
    packet still consumes serialization time, like a corrupted frame). *)
let transmit t ~size deliver : outcome =
  let now = Eventq.now t.clock in
  if backlog_bytes t + size > t.params.buffer_bytes then begin
    t.tail_dropped <- t.tail_dropped + 1;
    Dropped_tail
  end
  else begin
    let start = if t.busy_until > now then t.busy_until else now in
    let tx_time = float_of_int size /. t.params.bandwidth in
    t.busy_until <- start +. tx_time;
    if Rng.coin t.rng ~p:t.params.loss then begin
      t.lost <- t.lost + 1;
      Lost_random
    end
    else begin
      let noise =
        if t.params.jitter > 0.0 then
          Float.max 0.0 (Rng.gaussian t.rng *. t.params.jitter)
        else 0.0
      in
      let arrival = t.busy_until +. t.params.delay +. noise in
      ignore (Eventq.schedule t.clock ~at:arrival deliver);
      t.delivered <- t.delivered + 1;
      Delivered arrival
    end
  end

(** Convenience for ack/control paths: no bandwidth constraint, no loss. *)
let deliver_control t deliver =
  let at = Eventq.now t.clock +. t.params.delay in
  ignore (Eventq.schedule t.clock ~at deliver)
