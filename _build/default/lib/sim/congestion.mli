(** Pluggable congestion-control window increase for subflows: standard
    uncoupled NewReno, and the coupled increase of RFC 6356 (LIA), which
    caps the aggregate aggressiveness of all subflows so MPTCP stays
    friendly to single-path TCP on shared bottlenecks (paper §2.1). *)

val reno : Tcp_subflow.t -> int -> unit
(** The default per-subflow increase (re-exported from
    {!Tcp_subflow.reno_on_ack}). *)

val install_lia : Tcp_subflow.t list -> unit
(** Install the LIA coupled increase across the given subflows: per
    ack, cwnd_i += min(alpha / cwnd_total, 1 / cwnd_i). Slow start
    remains uncoupled, as in the Linux implementation. *)
