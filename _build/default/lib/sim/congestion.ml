(** Pluggable congestion-control window increase.

    Each {!Tcp_subflow.t} carries a [cc_on_ack] hook; this module provides
    the two policies used in the evaluation:

    - {!reno}: standard uncoupled NewReno per subflow (the loss/recovery
      machinery lives in [Tcp_subflow] and is shared by both policies);
    - {!lia}: the coupled increase of RFC 6356 ("Linked Increases"),
      which caps the aggregate aggressiveness of all subflows so MPTCP
      stays friendly to single-path TCP on shared bottlenecks.

    The paper treats congestion control as a separate building block the
    scheduler merely observes (§2.1); both policies expose the same CWND
    to the programming model. *)

let reno = Tcp_subflow.reno_on_ack

(** Install the LIA coupled increase across [subflows]: per ack,
    cwnd_i += min(alpha / cwnd_total, 1 / cwnd_i), with
    alpha = cwnd_total * max_i(cwnd_i / rtt_i^2) / (sum_i cwnd_i / rtt_i)^2. *)
let install_lia (subflows : Tcp_subflow.t list) =
  let lia_alpha () =
    let act =
      List.filter (fun s -> s.Tcp_subflow.established) subflows
    in
    let rtt s =
      Float.max 1e-4
        (if s.Tcp_subflow.rtt_samples = 0 then 0.05 else s.Tcp_subflow.srtt)
    in
    let total = List.fold_left (fun a s -> a +. s.Tcp_subflow.cwnd) 0.0 act in
    let best =
      List.fold_left
        (fun a s -> Float.max a (s.Tcp_subflow.cwnd /. (rtt s *. rtt s)))
        0.0 act
    in
    let denom =
      List.fold_left (fun a s -> a +. (s.Tcp_subflow.cwnd /. rtt s)) 0.0 act
    in
    if denom <= 0.0 then 1.0 else total *. best /. (denom *. denom)
  in
  let coupled (s : Tcp_subflow.t) acked =
    if s.Tcp_subflow.cwnd < s.Tcp_subflow.ssthresh then
      (* slow start is uncoupled, as in the Linux implementation *)
      s.Tcp_subflow.cwnd <- s.Tcp_subflow.cwnd +. float_of_int acked
    else begin
      let total =
        List.fold_left
          (fun a x ->
            if x.Tcp_subflow.established then a +. x.Tcp_subflow.cwnd else a)
          0.0 subflows
      in
      let alpha = lia_alpha () in
      let inc =
        Float.min
          (alpha /. Float.max 1.0 total)
          (1.0 /. Float.max 1.0 s.Tcp_subflow.cwnd)
      in
      s.Tcp_subflow.cwnd <- s.Tcp_subflow.cwnd +. (float_of_int acked *. inc)
    end
  in
  List.iter (fun s -> s.Tcp_subflow.cc_on_ack <- coupled) subflows
