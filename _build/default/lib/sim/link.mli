(** Unidirectional path model: serialization at a (possibly changing)
    bottleneck rate, propagation delay, optional jitter, Bernoulli loss
    and a drop-tail buffer — the stand-in for the paper's Mininet links
    and in-the-wild WiFi/LTE paths. A link may be shared by several
    subflows (shared-bottleneck experiments). *)

type params = {
  bandwidth : float;  (** bytes per second at the bottleneck *)
  delay : float;  (** one-way propagation delay, seconds *)
  loss : float;  (** packet loss probability in [0, 1] *)
  jitter : float;  (** std-dev of gaussian delay noise, seconds *)
  buffer_bytes : int;  (** drop-tail bottleneck buffer size *)
}

val default_params : params
(** 10 Mbit/s, 10 ms, lossless, 256 kB buffer. *)

type t = {
  mutable params : params;
  rng : Rng.t;
  clock : Eventq.t;
  mutable busy_until : float;
  mutable delivered : int;
  mutable lost : int;
  mutable tail_dropped : int;
}

val create : ?params:params -> clock:Eventq.t -> rng:Rng.t -> unit -> t

val set_bandwidth : t -> float -> unit
(** Change the bottleneck rate at runtime (bandwidth fluctuation). *)

val set_delay : t -> float -> unit

val set_loss : t -> float -> unit

val bandwidth : t -> float

val delay : t -> float

val busy_until : t -> float
(** Absolute time at which everything currently queued will be on the
    wire. *)

val backlog_bytes : t -> int
(** Bytes waiting for serialization, across all users of the link. *)

type outcome = Delivered of float | Lost_random | Dropped_tail

val transmit : t -> size:int -> (unit -> unit) -> outcome
(** Send [size] bytes; on success the callback fires at the arrival
    time. A randomly lost packet still consumes serialization time; a
    tail-dropped one does not. *)

val deliver_control : t -> (unit -> unit) -> unit
(** Ack/control path: propagation delay only, no loss or bandwidth. *)
