(** Deterministic pseudo-random numbers (SplitMix64). Every stochastic
    element of the simulator draws from an explicitly seeded generator,
    making every experiment exactly reproducible. *)

type t

val create : int -> t

val float : t -> float
(** Uniform in [0, 1). *)

val int : t -> int -> int
(** Uniform in [0, bound). @raise Invalid_argument on bound <= 0. *)

val coin : t -> p:float -> bool

val exponential : t -> mean:float -> float

val gaussian : t -> float
(** Standard normal (Box-Muller). *)

val split : t -> t
(** An independently seeded generator for a sub-component. *)
