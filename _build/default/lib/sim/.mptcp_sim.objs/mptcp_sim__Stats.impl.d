lib/sim/stats.ml: Array Connection Float List Path_manager Tcp_subflow
