lib/sim/path_manager.ml: Eventq Link List Meta_socket Rng Tcp_subflow
