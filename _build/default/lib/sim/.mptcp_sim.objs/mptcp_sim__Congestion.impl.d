lib/sim/congestion.ml: Float List Tcp_subflow
