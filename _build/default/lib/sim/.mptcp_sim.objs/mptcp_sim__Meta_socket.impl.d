lib/sim/meta_socket.ml: Action Api Array Env Eventq Float Hashtbl List Packet Pqueue Progmp_runtime Scheduler Sim_log Tcp_subflow
