lib/sim/meta_socket.ml: Action Api Array Env Eventq Float Hashtbl List Packet Pqueue Progmp_runtime Scheduler Sim_log Subflow_view Tcp_subflow
