lib/sim/eventq.ml: Array List
