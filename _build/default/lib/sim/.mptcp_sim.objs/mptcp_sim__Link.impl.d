lib/sim/link.ml: Eventq Float List Rng
