lib/sim/link.ml: Eventq Float Rng
