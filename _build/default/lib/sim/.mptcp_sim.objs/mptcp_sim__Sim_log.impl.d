lib/sim/sim_log.ml: Logs
