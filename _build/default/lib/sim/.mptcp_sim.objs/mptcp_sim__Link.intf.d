lib/sim/link.mli: Eventq Rng
