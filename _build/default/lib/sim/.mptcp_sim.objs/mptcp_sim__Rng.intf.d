lib/sim/rng.mli:
