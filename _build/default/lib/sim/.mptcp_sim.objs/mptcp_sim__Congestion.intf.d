lib/sim/congestion.mli: Tcp_subflow
