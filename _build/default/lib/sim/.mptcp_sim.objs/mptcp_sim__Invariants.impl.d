lib/sim/invariants.ml: Connection Eventq Float Fmt Hashtbl Link List Meta_socket Path_manager Progmp_runtime Tcp_subflow
