lib/sim/faults.mli: Connection Format
