lib/sim/connection.mli: Eventq Link Meta_socket Path_manager Progmp_runtime Rng Tcp_subflow
