lib/sim/eventq.mli:
