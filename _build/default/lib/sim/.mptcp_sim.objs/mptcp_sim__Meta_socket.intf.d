lib/sim/meta_socket.mli: Action Api Env Eventq Hashtbl Packet Progmp_runtime Subflow_view Tcp_subflow
