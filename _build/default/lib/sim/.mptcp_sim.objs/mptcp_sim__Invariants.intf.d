lib/sim/invariants.mli: Connection
