lib/sim/tcp_subflow.ml: Eventq Float Hashtbl Link List Packet Progmp_runtime Queue Sim_log Subflow_view
