lib/sim/faults.ml: Connection Fmt In_channel Link List Path_manager Rng Sim_log String Tcp_subflow
