lib/sim/tcp_subflow.mli: Eventq Hashtbl Link Packet Progmp_runtime Queue Subflow_view
