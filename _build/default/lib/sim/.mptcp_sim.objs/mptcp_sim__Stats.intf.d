lib/sim/stats.mli: Connection
