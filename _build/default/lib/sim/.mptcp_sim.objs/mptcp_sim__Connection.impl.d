lib/sim/connection.ml: Congestion Eventq List Meta_socket Path_manager Rng Tcp_subflow
