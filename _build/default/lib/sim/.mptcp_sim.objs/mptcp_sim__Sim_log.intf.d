lib/sim/sim_log.mli: Logs
