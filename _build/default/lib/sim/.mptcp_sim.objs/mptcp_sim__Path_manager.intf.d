lib/sim/path_manager.mli: Eventq Link Meta_socket Rng Tcp_subflow
