(** Cross-layer invariant checking for a running connection.

    An attached checker re-validates, after every simulator event, the
    properties that must survive arbitrary network dynamics (fault
    scripts, outages, burst loss):

    - per-subflow sequence accounting ([snd_una <= snd_nxt], in-flight
      within the unacknowledged window);
    - in-flight <= cwnd accounting against the congestion-window
      high-watermark since the flight last drained (cwnd may shrink below
      the flight in recovery, but nothing may be transmitted beyond it);
    - cwnd never below one segment;
    - no subflow progress while its link is down (receiver frozen under a
      dark data link, sender acks frozen under a dark ack link);
    - meta-level bytes delivered exactly once — in order under [Ordered]
      delivery — with consistent byte counters;
    - scheduler-visible views ({!Tcp_subflow.view}) reflecting ground
      truth, including injected backup/lossy state.

    Violations are collected rather than raised, so a run completes and
    everything can be reported at once. *)

type t

val attach : ?max_recorded:int -> Connection.t -> t
(** Attach a checker to [conn]: wraps the meta socket's delivery
    callback (chaining with whatever is already installed — attach
    {e after} any experiment-side [on_deliver] hook) and registers an
    event-queue observer so every subsequent event is validated.
    [max_recorded] caps stored messages (default 20); the total count is
    always exact. *)

val check_now : t -> unit
(** Run every check immediately (also runs automatically after each
    event). *)

val ok : t -> bool

val total : t -> int
(** Total violations observed, including ones beyond the recording
    cap. *)

val violations : t -> string list
(** Recorded violation messages, oldest first. *)

val report : t -> string option
(** [None] when clean; otherwise a multi-line summary. *)
