(** Log source for the simulator; silent unless the embedder enables it:
    [Logs.Src.set_level Sim_log.src (Some Logs.Debug)]. *)

val src : Logs.src

val debug : ('a, unit) Logs.msgf -> unit
