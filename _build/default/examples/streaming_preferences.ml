(* Interactive streaming with path preferences (paper Figs. 1 and 13).

   A 1 MB/s stream switches to 4 MB/s after 6 seconds, over WiFi
   (preferred, 10 ms RTT, fluctuating rate) and metered LTE (40 ms RTT).
   Three configurations:

   - the default MinRTT scheduler with LTE as a normal subflow: LTE
     carries a large share even at 1 MB/s (Fig. 1's complaint);
   - the default scheduler with LTE in backup mode: LTE is silent, so
     the 4 MB/s phase starves when WiFi dips;
   - the TAP scheduler with the target rate signalled in R1: LTE carries
     only the deficit.

   Run with: dune exec examples/streaming_preferences.exe *)

open Mptcp_sim

let target_rate t = if t < 6.0 then 1_000_000.0 else 4_000_000.0

let stop = 15.0

let run label ~scheduler ~lte_backup =
  ignore (Schedulers.Specs.load_all ());
  let paths = Apps.Scenario.wifi_lte ~lte_backup () in
  let conn = Connection.create ~seed:7 ~paths () in
  Progmp_runtime.Api.set_scheduler (Connection.sock conn) scheduler;
  Apps.Workload.cbr ~signal_register:0 conn ~start:0.5 ~stop ~interval:0.1
    ~rate:target_rate;
  (* WiFi fluctuates between 2.5 and 5 MB/s: its average cannot sustain
     the 4 MB/s phase alone *)
  Apps.Scenario.fluctuate_wifi conn ~rng:(Rng.create 99) ~until:stop
    ~low:2_500_000.0 ~high:5_000_000.0 ();
  let sampler = Stats.install conn ~interval:1.0 ~until:stop in
  Connection.run ~until:(stop +. 10.0) conn;
  let wifi = Connection.subflow conn 0 and lte = Connection.subflow conn 1 in
  let total = wifi.Tcp_subflow.bytes_sent + lte.Tcp_subflow.bytes_sent in
  (* a delivery-rate sample below 90% of the target while streaming is a
     visible stall *)
  let stalls =
    List.length
      (List.filter
         (fun (t, rate) -> t > 1.5 && t <= stop && rate < 0.9 *. target_rate t)
         (Stats.delivery_rate sampler))
  in
  Fmt.pr "%-28s lte share %4.1f%%  stalled seconds %2d  delivered %5.1f MB@."
    label
    (100.0 *. float_of_int lte.Tcp_subflow.bytes_sent /. float_of_int (max 1 total))
    stalls
    (float_of_int (Connection.delivered_bytes conn) /. 1e6)

let () =
  Fmt.pr "interactive stream: 1 MB/s for 6 s, then 4 MB/s (WiFi+LTE)@.@.";
  run "default (LTE regular)" ~scheduler:"default" ~lte_backup:false;
  run "default (LTE backup)" ~scheduler:"default" ~lte_backup:true;
  run "TAP (preference-aware)" ~scheduler:"tap" ~lte_backup:true;
  Fmt.pr
    "@.TAP sustains the stream like the default scheduler but keeps the \
     metered LTE usage close to the minimum the target rate requires.@."
