examples/dash_streaming.mli:
