examples/quickstart.ml: Connection Fmt Link List Mptcp_sim Path_manager Progmp_compiler Progmp_runtime
