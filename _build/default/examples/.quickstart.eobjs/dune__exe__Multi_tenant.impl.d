examples/multi_tenant.ml: Api Apps Connection Eventq Fmt Hashtbl Link List Meta_socket Mptcp_sim Progmp_runtime Schedulers Stats
