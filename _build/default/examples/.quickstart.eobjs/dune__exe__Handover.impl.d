examples/handover.ml: Apps Connection Faults Fmt Invariants List Meta_socket Mptcp_sim Progmp_runtime Schedulers Tcp_subflow
