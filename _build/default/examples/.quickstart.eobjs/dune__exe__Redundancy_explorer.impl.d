examples/redundancy_explorer.ml: Apps Connection Fmt List Mptcp_sim Progmp_runtime Schedulers
