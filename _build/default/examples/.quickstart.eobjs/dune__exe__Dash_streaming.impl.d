examples/dash_streaming.ml: Apps Connection Fmt Link List Mptcp_sim Progmp_runtime Schedulers
