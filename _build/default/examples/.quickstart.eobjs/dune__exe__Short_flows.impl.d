examples/short_flows.ml: Apps Connection Fmt List Mptcp_sim Progmp_runtime Schedulers
