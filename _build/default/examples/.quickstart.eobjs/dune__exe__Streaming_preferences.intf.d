examples/streaming_preferences.mli:
