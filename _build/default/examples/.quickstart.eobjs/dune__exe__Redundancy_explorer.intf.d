examples/redundancy_explorer.mli:
