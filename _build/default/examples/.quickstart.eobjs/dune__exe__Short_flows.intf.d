examples/short_flows.mli:
