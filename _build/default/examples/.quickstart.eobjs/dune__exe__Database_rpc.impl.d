examples/database_rpc.ml: Apps Connection Fmt Hashtbl List Meta_socket Mptcp_sim Path_manager Progmp_runtime Schedulers Stats Tcp_subflow
