examples/quickstart.mli:
