examples/streaming_preferences.ml: Apps Connection Fmt List Mptcp_sim Progmp_runtime Rng Schedulers Stats Tcp_subflow
