examples/handover.mli:
