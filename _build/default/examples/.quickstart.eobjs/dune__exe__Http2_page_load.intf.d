examples/http2_page_load.mli:
