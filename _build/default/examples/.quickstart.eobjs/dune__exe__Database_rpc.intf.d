examples/database_rpc.mli:
