examples/http2_page_load.ml: Apps Connection Fmt List Mptcp_sim Schedulers
