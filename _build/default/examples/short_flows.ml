(* Boosting short flows with application signaling (paper §5.3, Fig. 12).

   Short request/response flows over two subflows whose RTTs diverge. The
   application tells the Compensating scheduler when a flow ends (register
   R2); the scheduler then retransmits the packets still in flight on the
   other subflows, so the flow never waits for the slow path's last
   packet.

   Run with: dune exec examples/short_flows.exe *)

open Mptcp_sim

let flow_size = 40_000 (* ~28 segments: a typical short web response *)

let measure ~scheduler ~rtt_ratio ~signal_end =
  ignore (Schedulers.Specs.load_all ());
  let mk_conn ~seed =
    let paths = Apps.Scenario.mininet_two_subflows ~rtt_ratio ~base_rtt:0.02 () in
    let conn = Connection.create ~seed ~paths () in
    Progmp_runtime.Api.set_scheduler (Connection.sock conn) scheduler;
    conn
  in
  let after_write conn =
    if signal_end then
      (* the flow ends with this write: signal it (R2 := 1) *)
      Progmp_runtime.Api.set_register (Connection.sock conn) 1 1
  in
  let fct, wire, completed =
    Apps.Workload.measure_flows ~after_write ~mk_conn ~size:flow_size ~reps:15 ()
  in
  assert (completed = 15);
  (fct *. 1e3, wire /. float_of_int flow_size)

let () =
  Fmt.pr "short flows (%d B) over subflows with diverging RTTs@.@." flow_size;
  Fmt.pr "%-10s %24s %28s@." "RTT ratio" "default FCT (overhead)"
    "compensating FCT (overhead)";
  List.iter
    (fun rtt_ratio ->
      let d_fct, d_wire = measure ~scheduler:"default" ~rtt_ratio ~signal_end:false in
      let c_fct, c_wire =
        measure ~scheduler:"compensating" ~rtt_ratio ~signal_end:true
      in
      Fmt.pr "%-10.1f %15.1f ms (%.2fx) %19.1f ms (%.2fx)@." rtt_ratio d_fct
        d_wire c_fct c_wire)
    [ 1.0; 2.0; 4.0; 6.0; 8.0 ];
  Fmt.pr
    "@.With the end-of-flow signal, the Compensating scheduler retains the \
     flow completion time as the RTT ratio grows, paying a bounded \
     retransmission overhead (wire bytes / flow bytes).@."
