(* WiFi -> LTE handover (paper §5.2), reproduced with the fault-injection
   subsystem: a steady 2 MB/s stream runs over the WiFi/LTE setup, the
   WiFi path goes dark at t=3 s and comes back at t=8 s.

   The default minimum-RTT scheduler keeps trusting the (established but
   dead) WiFi subflow and never touches the LTE backup, so delivery
   stalls for the whole outage. The handover-aware scheduler of §5.2 —
   pointed at the LTE subflow via register R1 by the "connection
   manager" — reinjects everything WiFi was carrying onto LTE and keeps
   the stream moving.

   The run is self-checking: it asserts that default stalls, that the
   handover scheduler keeps outage goodput within 2x of the pre-fault
   goodput, and that LTE takes over within roughly one RTO of the
   Link_down. Deterministic under the fixed seed.

   Run with: dune exec examples/handover.exe *)

open Mptcp_sim

let seed = 7
let outage_start = 3.0
let outage_end = 8.0
let cbr_rate = 2_000_000.0 (* bytes per second *)

(* One run: stream over WiFi+LTE, WiFi dark in [3, 8). Returns
   (pre-fault goodput, outage goodput, takeover latency, checker). *)
let run ~with_handover =
  let paths = Apps.Scenario.wifi_lte () in
  let conn = Connection.create ~seed ~paths () in
  let sock = Connection.sock conn in
  Progmp_runtime.Api.set_scheduler sock "default";

  (* Goodput recorder: bytes the application received in the window
     before the fault and during it, plus the first post-fault delivery
     (installed before the invariant checker, which chains after it). *)
  let pre = ref 0 and during = ref 0 in
  let first_after_fault = ref None in
  conn.Connection.meta.Meta_socket.on_deliver <-
    (fun ~seq:_ ~size ~time ->
      if time >= 1.0 && time < outage_start then pre := !pre + size
      else if time >= outage_start && time < outage_end then begin
        during := !during + size;
        if !first_after_fault = None then first_after_fault := Some time
      end);
  let checker = Invariants.attach conn in

  (* The fault: WiFi (data and ack direction) dark for five seconds. *)
  Faults.apply conn
    [
      Faults.step ~at:outage_start "wifi" Faults.Link_down;
      Faults.step ~at:outage_end "wifi" Faults.Link_up;
    ];

  (* The §5.2 connection manager: on the (predicted) handover it points
     the handover scheduler at the LTE subflow via R1, and reverts once
     WiFi is back. *)
  if with_handover then begin
    Connection.at conn ~time:outage_start (fun () ->
        Progmp_runtime.Api.set_register sock 0
          (Connection.subflow conn 1).Tcp_subflow.id;
        Progmp_runtime.Api.set_scheduler sock "handover");
    Connection.at conn ~time:outage_end (fun () ->
        Progmp_runtime.Api.set_scheduler sock "default")
  end;

  Apps.Workload.cbr conn ~start:0.2 ~stop:10.0 ~interval:0.1
    ~rate:(fun _ -> cbr_rate);
  Connection.run ~until:12.0 conn;

  let pre_rate = float_of_int !pre /. (outage_start -. 1.0) in
  let during_rate = float_of_int !during /. (outage_end -. outage_start) in
  let takeover =
    match !first_after_fault with
    | Some t -> t -. outage_start
    | None -> infinity
  in
  (pre_rate, during_rate, takeover, checker)

let () =
  ignore (Schedulers.Specs.load_all ());

  let pre_d, during_d, _, check_d = run ~with_handover:false in
  let pre_h, during_h, takeover_h, check_h = run ~with_handover:true in

  Fmt.pr "WiFi outage %.0f..%.0f s, %.1f MB/s stream (seed %d)@."
    outage_start outage_end (cbr_rate /. 1e6) seed;
  Fmt.pr "default  : %.2f MB/s before fault, %.2f MB/s during outage@."
    (pre_d /. 1e6) (during_d /. 1e6);
  Fmt.pr "handover : %.2f MB/s before fault, %.2f MB/s during outage, LTE \
          takeover after %.0f ms@."
    (pre_h /. 1e6) (during_h /. 1e6) (takeover_h *. 1e3);

  (* Self-check: the three §5.2 claims. *)
  let failures = ref [] in
  let check name cond = if not cond then failures := name :: !failures in
  check "default scheduler should stall during the outage"
    (during_d < 0.1 *. pre_d);
  check "handover goodput should stay within 2x of pre-fault goodput"
    (during_h >= pre_h /. 2.0);
  check "LTE should take over within ~1 RTO (1 s) of Link_down"
    (takeover_h <= 1.0);
  check "invariants must hold for the default run" (Invariants.ok check_d);
  check "invariants must hold for the handover run" (Invariants.ok check_h);

  List.iter
    (fun c ->
      match Invariants.report c with
      | Some r -> Fmt.epr "%s@." r
      | None -> ())
    [ check_d; check_h ];
  match !failures with
  | [] -> Fmt.pr "handover experiment: ok@."
  | fs ->
      List.iter (Fmt.epr "FAIL: %s@.") (List.rev fs);
      exit 1
