(* Deadline-driven adaptive streaming (paper §5.4, the MP-DASH row of
   Table 2).

   A video session fetches one 400 kB chunk every 500 ms over WiFi +
   metered LTE. WiFi collapses twice. The application's control loop
   keeps register R1 updated with the throughput required to meet the
   outstanding chunk deadlines; the deadline scheduler wakes the
   non-preferred LTE subflow only when that target is at risk.

   Run with: dune exec examples/dash_streaming.exe *)

open Mptcp_sim

let run label ~scheduler =
  ignore (Schedulers.Specs.load_all ());
  let paths = Apps.Scenario.wifi_lte () in
  let conn = Connection.create ~seed:19 ~paths () in
  Progmp_runtime.Api.set_scheduler (Connection.sock conn) scheduler;
  (* two WiFi collapses to 0.3 MB/s *)
  List.iter
    (fun (t, bw) ->
      Connection.at conn ~time:t (fun () ->
          Link.set_bandwidth (Connection.data_link conn 0) bw))
    [ (2.0, 300_000.0); (3.5, 5_000_000.0); (5.0, 300_000.0); (6.5, 5_000_000.0) ];
  let session =
    Apps.Dash.start ~period:0.5 ~count:16 ~chunk_bytes:(fun _ -> 400_000) conn
  in
  Connection.run ~until:60.0 conn;
  let o = Apps.Dash.evaluate session in
  Fmt.pr "%-26s misses %2d/16   worst lateness %6.0f ms   LTE bytes %8d@."
    label o.Apps.Dash.deadline_misses
    (o.Apps.Dash.worst_lateness *. 1e3)
    o.Apps.Dash.backup_bytes

let () =
  Fmt.pr "DASH: 400 kB chunks every 500 ms; WiFi collapses twice@.@.";
  run "default (LTE backup)" ~scheduler:"default";
  run "deadline-aware" ~scheduler:"target_deadline";
  Fmt.pr
    "@.The deadline scheduler meets every deadline by waking LTE only \
     during the WiFi collapses; the default scheduler's backup semantics \
     never touch LTE and miss deadlines instead.@."
