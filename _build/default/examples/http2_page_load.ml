(* HTTP/2-aware scheduling (paper §5.5, Fig. 14).

   An MPTCP-aware web server annotates packets with their content class
   (dependency-critical head, initial-view content, below-the-fold
   images). The HTTP/2-aware scheduler keeps critical packets off
   high-RTT subflows — so third-party dependencies are discovered as
   early as possible — and keeps below-the-fold bytes off the metered LTE
   subflow entirely.

   Run with: dune exec examples/http2_page_load.exe *)

open Mptcp_sim

let page = Apps.Http2.optimized_page

let load ~scheduler ~wifi_extra_delay =
  ignore (Schedulers.Specs.load_all ());
  (* the default scheduler knows no preferences: for its baseline, LTE is
     a regular subflow (the paper's complaint is precisely that it then
     carries bulky below-the-fold content); the HTTP/2-aware scheduler
     reads the backup flag as the non-preferred marker *)
  let paths =
    Apps.Scenario.wifi_lte ~wifi_extra_delay
      ~lte_backup:(scheduler = "http2_aware") ()
  in
  let conn = Connection.create ~seed:21 ~paths () in
  if scheduler = "http2_aware" then Apps.Webserver.prepare conn page;
  match Apps.Webserver.serve_with ~scheduler_name:scheduler conn page with
  | Some r -> r
  | None -> failwith "page load did not complete"

let () =
  Fmt.pr "page: %d resources, %d B total, %d B below the fold@.@."
    (List.length page.Apps.Http2.resources)
    (Apps.Http2.total_bytes page)
    (Apps.Http2.bytes_of_class page Apps.Http2.Deferred);
  Fmt.pr "%-12s %-13s | %-11s %-9s %-9s | %-11s %-9s %-9s@." "" "" "default:" ""
    "" "http2-aware:" "" "";
  Fmt.pr "%-12s %-13s | %-11s %-9s %-9s | %-11s %-9s %-9s@." "wifi delay"
    "rtt ratio" "dep (ms)" "load (ms)" "lte (kB)" "dep (ms)" "load (ms)"
    "lte (kB)";
  List.iter
    (fun extra ->
      let d = load ~scheduler:"default" ~wifi_extra_delay:extra in
      let h = load ~scheduler:"http2_aware" ~wifi_extra_delay:extra in
      let ratio = (0.005 +. extra) /. 0.020 in
      Fmt.pr "%-12.0f %-13.2f | %-11.1f %-9.1f %-9.1f | %-11.1f %-9.1f %-9.1f@."
        (extra *. 1e3) ratio
        (d.Apps.Http2.dependency_time *. 1e3)
        (d.Apps.Http2.full_load_time *. 1e3)
        (float_of_int d.Apps.Http2.lte_bytes /. 1e3)
        (h.Apps.Http2.dependency_time *. 1e3)
        (h.Apps.Http2.full_load_time *. 1e3)
        (float_of_int h.Apps.Http2.lte_bytes /. 1e3))
    [ 0.0; 0.005; 0.015; 0.035; 0.055 ];
  Fmt.pr
    "@.The HTTP/2-aware scheduler retrieves the dependency information \
     fast even when WiFi degrades, and moves below-the-fold bytes off the \
     metered LTE subflow.@."
