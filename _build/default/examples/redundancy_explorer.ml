(* Exploring the redundancy design space (paper §5.1, Fig. 10).

   Flow completion time of short flows over two lossy subflows, for the
   default scheduler and the three redundancy flavours: the existing
   fully-redundant scheduler, OpportunisticRedundant (redundancy only at
   first scheduling), and RedundantIfNoQ (fresh packets always first).

   Run with: dune exec examples/redundancy_explorer.exe *)

open Mptcp_sim

let schedulers =
  [ "default"; "redundant"; "opportunistic_redundant"; "redundant_if_no_q" ]

let measure ~scheduler ~size =
  ignore (Schedulers.Specs.load_all ());
  let mk_conn ~seed =
    let paths =
      Apps.Scenario.mininet_two_subflows ~rtt_ratio:2.0 ~loss:0.02 ()
    in
    let conn = Connection.create ~seed ~paths () in
    Progmp_runtime.Api.set_scheduler (Connection.sock conn) scheduler;
    conn
  in
  let fct, wire, completed =
    Apps.Workload.measure_flows ~mk_conn ~size ~reps:12 ()
  in
  assert (completed = 12);
  (fct *. 1e3, wire /. float_of_int size)

let () =
  Fmt.pr "short flows over 2 subflows with 2%% loss — mean FCT (wire/flow)@.@.";
  Fmt.pr "%-10s" "size (kB)";
  List.iter (fun s -> Fmt.pr " %26s" s) schedulers;
  Fmt.pr "@.";
  List.iter
    (fun size ->
      Fmt.pr "%-10d" (size / 1000);
      List.iter
        (fun scheduler ->
          let fct, overhead = measure ~scheduler ~size in
          Fmt.pr " %17.1f ms (%.2fx)" fct overhead)
        schedulers;
      Fmt.pr "@.")
    [ 10_000; 30_000; 100_000; 300_000 ];
  Fmt.pr
    "@.Redundant flavours beat the default scheduler on small lossy flows; \
     as flows grow, full redundancy gets expensive while RedundantIfNoQ \
     keeps favouring fresh data (paper Fig. 10b).@."
