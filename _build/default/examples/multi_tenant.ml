(* Multi-tenancy: isolated application-defined schedulers (paper
   abstract and §6, "Target Developer").

   Two tenants share one process and one simulated network epoch:

   - tenant A runs an interactive assistant (thin request/response
     traffic) and installs the latency- and preference-aware scheduler
     with a 30 ms tolerable-RTT intent;
   - tenant B bulk-uploads with the plain default scheduler.

   Each connection has its own register file and scheduler choice —
   loading or configuring one tenant's scheduler never perturbs the
   other, which is the isolation property the in-kernel runtime provides
   to containers.

   Run with: dune exec examples/multi_tenant.exe *)

open Mptcp_sim
open Progmp_runtime

let () =
  ignore (Schedulers.Specs.load_all ());
  let clock = Eventq.create () in

  (* tenant A: assistant over WiFi+LTE; WiFi degrades mid-run *)
  let assistant =
    Connection.create ~clock ~seed:1 ~paths:(Apps.Scenario.wifi_lte ()) ()
  in
  Api.set_scheduler (Connection.sock assistant) "target_rtt";
  Api.set_register (Connection.sock assistant) 0 30_000 (* 30 ms target *);
  Connection.at assistant ~time:3.0 (fun () ->
      Link.set_delay (Connection.data_link assistant 0) 0.080);
  Connection.at assistant ~time:6.0 (fun () ->
      Link.set_delay (Connection.data_link assistant 0) 0.005);

  (* tenant B: bulk upload over the same kind of paths, default policy *)
  let uploader =
    Connection.create ~clock ~seed:2
      ~paths:(Apps.Scenario.wifi_lte ~lte_backup:false ())
      ()
  in
  ignore (Api.scheduler_name (Connection.sock uploader)) (* default *);

  (* traffic *)
  let latencies = ref [] in
  let pending = Hashtbl.create 64 in
  assistant.Connection.meta.Meta_socket.on_deliver <-
    (fun ~seq ~size:_ ~time ->
      match Hashtbl.find_opt pending seq with
      | Some t0 -> latencies := (time -. t0) :: !latencies
      | None -> ());
  let rec ask t =
    if t < 9.0 then
      Connection.at assistant ~time:t (fun () ->
          let seqs = Connection.write assistant 1448 in
          List.iter
            (fun s -> Hashtbl.replace pending s (Connection.now assistant))
            seqs;
          ask (t +. 0.1))
  in
  ask 0.3;
  Apps.Workload.bulk uploader ~at:0.3 ~bytes:20_000_000;

  ignore (Eventq.run ~until:60.0 clock);

  Fmt.pr "tenant A (assistant, target_rtt):@.";
  Fmt.pr "  requests        : %d@." (List.length !latencies);
  Fmt.pr "  median latency  : %.1f ms@."
    (Stats.median !latencies *. 1e3);
  Fmt.pr "  p95 latency     : %.1f ms (WiFi spiked to 160 ms RTT for 3 s)@."
    (Stats.percentile 0.95 !latencies *. 1e3);
  Fmt.pr "tenant B (uploader, default):@.";
  Fmt.pr "  uploaded        : %.1f MB in %.2f s@."
    (float_of_int (Connection.delivered_bytes uploader) /. 1e6)
    (Connection.now uploader);
  Fmt.pr "@.isolation: scheduler choices %S vs %S, tenant A's R1=%d while \
          tenant B's R1=%d@."
    (Api.scheduler_name (Connection.sock assistant))
    (Api.scheduler_name (Connection.sock uploader))
    (Api.get_register (Connection.sock assistant) 0)
    (Api.get_register (Connection.sock uploader) 0)
