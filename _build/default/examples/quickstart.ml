(* Quickstart: write your own MPTCP scheduler in ProgMP, load it through
   the application API, and watch it schedule a transfer over two
   simulated paths.

   Run with: dune exec examples/quickstart.exe *)

open Mptcp_sim

(* A custom scheduler: prefer the subflow with the lowest RTT *variance*
   (a jitter-sensitive application), among those with a free congestion
   window — a one-line variation the paper's §3.4 suggests. *)
let my_scheduler =
  {|
VAR open = SUBFLOWS.FILTER(sbf =>
  sbf.CWND > sbf.SKBS_IN_FLIGHT + sbf.QUEUED);
IF (!Q.EMPTY) {
  VAR sbf = open.MIN(m => m.RTT_VAR);
  IF (sbf != NULL) { sbf.PUSH(Q.POP()); }
}
|}

let () =
  (* 1. Two paths: a fast 10 ms path and a slow 40 ms path. *)
  let paths =
    [
      Path_manager.symmetric ~name:"fast"
        { Link.default_params with Link.bandwidth = 2_500_000.0; delay = 0.005 };
      Path_manager.symmetric ~name:"slow"
        { Link.default_params with Link.bandwidth = 1_500_000.0; delay = 0.020 };
    ]
  in
  let conn = Connection.create ~seed:1 ~paths () in
  let sock = Connection.sock conn in

  (* 2. Load the scheduler (parse + type check) and select it for this
        connection — the Fig. 8 API, in OCaml. *)
  Progmp_runtime.Api.load_scheduler my_scheduler ~name:"min-jitter";
  Progmp_runtime.Api.set_scheduler sock "min-jitter";

  (* Optional: run it as compiled bytecode instead of interpreted, by
     selecting the "vm" engine from the registry. *)
  Progmp_compiler.Compile.register_engines ();
  (match Progmp_runtime.Scheduler.find "min-jitter" with
  | Some sched ->
      Progmp_runtime.Scheduler.set_engine sched "vm";
      Fmt.pr "scheduler now runs on the %s engine@."
        (Progmp_runtime.Scheduler.engine_label sched)
  | None -> assert false);

  (* 3. Transfer 2 MB and report. *)
  Connection.write_at conn ~time:0.1 2_000_000;
  Connection.run ~until:30.0 conn;

  Fmt.pr "delivered %d bytes in %.3f s@."
    (Connection.delivered_bytes conn)
    (Connection.now conn);
  List.iter
    (fun (name, bytes) -> Fmt.pr "  %s carried %d bytes@." name bytes)
    (Connection.bytes_sent_per_subflow conn);

  (* 4. Applications can steer the scheduler at runtime via registers —
        here we just show the call; our toy scheduler ignores R1. *)
  Progmp_runtime.Api.set_register sock 0 4_000_000;
  Fmt.pr "register R1 now %d (a scheduling intent the spec could read)@."
    (Progmp_runtime.Api.get_register sock 0)
