(* The paper's §3.2 motivating example: a database connection where
   "small requests, which usually consist of a few packets, may
   significantly benefit from redundancy while introducing a limited
   overhead. In contrast, heavy database responses can be transmitted
   throughput-optimized on the same connection."

   The client marks its small RPCs with PROP2 = 1 (the per-packet
   scheduling intent of the extended API); the priority_redundant
   scheduler copies them onto every subflow with room — the first copy
   to arrive wins — while bulk result sets ride plain min-RTT.

   Run with: dune exec examples/database_rpc.exe *)

open Mptcp_sim

let run label ~scheduler ~mark_requests =
  ignore (Schedulers.Specs.load_all ());
  let paths =
    Apps.Scenario.mininet_two_subflows ~rtt_ratio:2.0 ~loss:0.02 ()
  in
  let conn = Connection.create ~seed:23 ~paths () in
  Progmp_runtime.Api.set_scheduler (Connection.sock conn) scheduler;
  let latencies = ref [] in
  let pending = Hashtbl.create 64 in
  conn.Connection.meta.Meta_socket.on_deliver <- (fun ~seq ~size:_ ~time ->
      match Hashtbl.find_opt pending seq with
      | Some t0 -> latencies := (time -. t0) :: !latencies
      | None -> ());
  (* every 250 ms: a 1-packet RPC followed by a 100 kB result set
     (~400 kB/s offered against ~1 MB/s loss-limited capacity) *)
  let rec tick t =
    if t < 8.0 then
      Connection.at conn ~time:t (fun () ->
          let props = if mark_requests then [| 0; 1; 0; 0 |] else [| 0 |] in
          List.iter
            (fun s -> Hashtbl.replace pending s (Connection.now conn))
            (Connection.write ~props conn 400);
          ignore (Connection.write conn 100_000);
          tick (t +. 0.25))
  in
  tick 0.2;
  Connection.run ~until:120.0 conn;
  let wire =
    List.fold_left
      (fun a m -> a + m.Path_manager.subflow.Tcp_subflow.bytes_sent)
      0 conn.Connection.paths
  in
  Fmt.pr "%-34s rpc p95 %6.1f ms   max %6.1f ms   wire overhead %.3fx@."
    label
    (Stats.percentile 0.95 !latencies *. 1e3)
    (Stats.percentile 1.0 !latencies *. 1e3)
    (float_of_int wire /. float_of_int (Connection.delivered_bytes conn))

let () =
  Fmt.pr
    "database traffic: tiny RPCs interleaved with 100 kB result sets,@.2 \
     subflows, 2%% loss@.@.";
  run "default (no intents)" ~scheduler:"default" ~mark_requests:false;
  run "priority_redundant (PROP2 = 1)" ~scheduler:"priority_redundant"
    ~mark_requests:true;
  Fmt.pr
    "@.Marking only the requests buys them loss-proof redundant delivery \
     at a negligible overall overhead: the heavy responses still use the \
     aggregated bandwidth (the paper's §3.2 example).@."
