(** Shared helpers for the test suites: environment construction,
    action normalization (comparing runs across independently built
    environments), and spec shorthands. *)

open Progmp_runtime

(** Description of a reproducible environment. *)
type env_spec = {
  q_seqs : int list;  (** packets (by data seq) initially in Q *)
  qu_seqs : (int * int list) list;  (** (seq, subflow ids it was sent on) *)
  rq_seqs : int list;  (** seqs (must also be in QU) in RQ *)
  views : Subflow_view.t list;
  regs : (int * int) list;
}

let default_env_spec =
  {
    q_seqs = [ 0; 1; 2 ];
    qu_seqs = [];
    rq_seqs = [];
    views =
      [
        { Subflow_view.default with Subflow_view.id = 0; rtt_us = 40_000 };
        { Subflow_view.default with Subflow_view.id = 1; rtt_us = 10_000 };
      ];
    regs = [];
  }

(** Build a fresh environment (packets get fresh ids; comparisons must go
    through {!norm_action}/seq numbers). Returns the env and the subflow
    snapshot to execute against. *)
let build (spec : env_spec) =
  let env = Env.create () in
  let mk seq = Packet.create ~seq ~size:1448 ~now:0.0 () in
  List.iter (fun seq -> Pqueue.push_back env.Env.q (mk seq)) spec.q_seqs;
  let qu_packets =
    List.map
      (fun (seq, sent_on) ->
        let p = mk seq in
        List.iter (fun sbf_id -> Packet.mark_sent p ~sbf_id) sent_on;
        Pqueue.push_back env.Env.qu p;
        (seq, p))
      spec.qu_seqs
  in
  List.iter
    (fun seq ->
      match List.assoc_opt seq qu_packets with
      | Some p -> Pqueue.push_back env.Env.rq p
      | None -> Pqueue.push_back env.Env.rq (mk seq))
    spec.rq_seqs;
  List.iter (fun (r, v) -> Env.set_register env r v) spec.regs;
  (env, Array.of_list spec.views)

(** Environment-independent view of an action. *)
type norm_action = N_push of int * int  (** sbf id, seq *) | N_drop of int

let norm_action = function
  | Action.Push { sbf_id; pkt } -> N_push (sbf_id, pkt.Packet.seq)
  | Action.Drop pkt -> N_drop pkt.Packet.seq

let pp_norm ppf = function
  | N_push (s, q) -> Fmt.pf ppf "push(%d,seq%d)" s q
  | N_drop q -> Fmt.pf ppf "drop(seq%d)" q

let norm_testable = Alcotest.testable pp_norm ( = )

let seqs_of q = List.map (fun p -> p.Packet.seq) (Pqueue.to_list q)

(** Run [sched] once against a fresh build of [spec]; returns normalized
    actions plus the final (Q, QU, RQ) seq lists and registers. *)
let run_once sched spec =
  let env, views = build spec in
  let actions = Scheduler.execute sched env ~subflows:views in
  ( List.map norm_action actions,
    (seqs_of env.Env.q, seqs_of env.Env.qu, seqs_of env.Env.rq),
    Array.to_list env.Env.registers )

let load_anon =
  let n = ref 0 in
  fun src ->
    incr n;
    Scheduler.of_source ~name:(Fmt.str "test-%d" !n) src

let check_type_error src =
  match Progmp_lang.Typecheck.compile_source src with
  | _ -> Alcotest.failf "expected a type error for:@\n%s" src
  | exception Progmp_lang.Typecheck.Error _ -> ()

let tc name f = Alcotest.test_case name `Quick f
