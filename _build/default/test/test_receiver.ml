(** Receiver-side packet handling, packetdrill style (§4.2): crafted
    arrival traces with loss and cross-subflow reordering, asserting that
    the improved receiver delivers in-order data at the earliest possible
    moment while the stock two-layer receiver holds it back. *)

open Mptcp_sim
open Progmp_runtime
open Helpers

(* A meta socket with two subflows whose arrivals we inject by hand. *)
type rig = {
  clock : Eventq.t;
  meta : Meta_socket.t;
  sbf1 : Tcp_subflow.t;
  sbf2 : Tcp_subflow.t;
  delivered : (int * float) list ref;  (** (data seq, time) in order *)
}

let make_rig ~mode () =
  let clock = Eventq.create () in
  let rng = Rng.create 7 in
  let meta = Meta_socket.create ~clock () in
  let mk id =
    let params = { Link.default_params with Link.delay = 0.01 } in
    let data_link = Link.create ~params ~clock ~rng () in
    let ack_link = Link.create ~params ~clock ~rng () in
    let s =
      Tcp_subflow.create ~id ~clock ~data_link ~ack_link ~delivery_mode:mode ()
    in
    Meta_socket.attach meta s;
    s
  in
  let sbf1 = mk 0 and sbf2 = mk 1 in
  let delivered = ref [] in
  meta.Meta_socket.on_deliver <-
    (fun ~seq ~size:_ ~time -> delivered := (seq, time) :: !delivered);
  { clock; meta; sbf1; sbf2; delivered }

let pkt seq = Packet.create ~seq ~size:1448 ~now:0.0 ()

(* Inject arrival of [data_seq] on [sbf] carried as subflow seq [ss] at
   absolute time [at]. *)
let arrive rig sbf ~at ~ss ~data_seq =
  ignore
    (Eventq.schedule rig.clock ~at (fun () ->
         Tcp_subflow.inject_arrival sbf ~seq:ss (pkt data_seq)))

let delivered_seqs rig = List.rev_map fst !(rig.delivered)

let delivery_time rig seq =
  match List.assoc_opt seq !(rig.delivered) with
  | Some t -> t
  | None -> Alcotest.failf "segment %d was not delivered" seq

let suite =
  [
    ( "receiver",
      [
        tc "in-order arrivals deliver immediately (both modes)" (fun () ->
            List.iter
              (fun mode ->
                let rig = make_rig ~mode () in
                arrive rig rig.sbf1 ~at:1.0 ~ss:0 ~data_seq:0;
                arrive rig rig.sbf1 ~at:2.0 ~ss:1 ~data_seq:1;
                ignore (Eventq.run rig.clock);
                Alcotest.(check (list int)) "order" [ 0; 1 ] (delivered_seqs rig);
                Alcotest.(check (float 1e-9)) "t0" 1.0 (delivery_time rig 0);
                Alcotest.(check (float 1e-9)) "t1" 2.0 (delivery_time rig 1))
              [ Tcp_subflow.Two_layer; Tcp_subflow.Immediate ]);
        tc "cross-subflow interleaving delivers in data order" (fun () ->
            let rig = make_rig ~mode:Tcp_subflow.Immediate () in
            arrive rig rig.sbf1 ~at:1.0 ~ss:0 ~data_seq:0;
            arrive rig rig.sbf2 ~at:1.5 ~ss:0 ~data_seq:2;
            arrive rig rig.sbf1 ~at:2.0 ~ss:1 ~data_seq:1;
            ignore (Eventq.run rig.clock);
            Alcotest.(check (list int)) "order" [ 0; 1; 2 ] (delivered_seqs rig);
            (* 2 had to wait for 1 *)
            Alcotest.(check (float 1e-9)) "t2 held until t1" 2.0
              (delivery_time rig 2));
        tc "paper's §4.2 pattern: subflow gap need not block meta delivery"
          (fun () ->
            (* subflow 1 loses its first segment (ss 0, data 5 — a
               retransmitted old packet); ss 1 carries data 0, which IS
               the next in-order meta data. The improved receiver pushes
               data 0 up at once; the two-layer receiver waits for the
               subflow gap to heal. *)
            let run mode =
              let rig = make_rig ~mode () in
              (* ss 0 (data 5) never arrives until 9.0 — simulated loss +
                 late retransmission *)
              arrive rig rig.sbf1 ~at:1.0 ~ss:1 ~data_seq:0;
              arrive rig rig.sbf1 ~at:9.0 ~ss:0 ~data_seq:5;
              ignore (Eventq.run rig.clock);
              rig
            in
            let improved = run Tcp_subflow.Immediate in
            Alcotest.(check (float 1e-9)) "improved delivers data 0 at 1.0" 1.0
              (delivery_time improved 0);
            let stock = run Tcp_subflow.Two_layer in
            Alcotest.(check (float 1e-9)) "stock delays data 0 until 9.0" 9.0
              (delivery_time stock 0));
        tc "subflow reordering heals within the subflow (two-layer)"
          (fun () ->
            let rig = make_rig ~mode:Tcp_subflow.Two_layer () in
            arrive rig rig.sbf1 ~at:1.0 ~ss:1 ~data_seq:1;
            arrive rig rig.sbf1 ~at:2.0 ~ss:0 ~data_seq:0;
            ignore (Eventq.run rig.clock);
            Alcotest.(check (list int)) "order" [ 0; 1 ] (delivered_seqs rig);
            Alcotest.(check (float 1e-9)) "both at heal time" 2.0
              (delivery_time rig 1));
        tc "duplicate data (redundant copies) delivers exactly once"
          (fun () ->
            let rig = make_rig ~mode:Tcp_subflow.Immediate () in
            arrive rig rig.sbf1 ~at:1.0 ~ss:0 ~data_seq:0;
            arrive rig rig.sbf2 ~at:1.2 ~ss:0 ~data_seq:0;
            arrive rig rig.sbf2 ~at:1.4 ~ss:1 ~data_seq:1;
            ignore (Eventq.run rig.clock);
            Alcotest.(check (list int)) "once" [ 0; 1 ] (delivered_seqs rig);
            Alcotest.(check (float 1e-9)) "first copy wins" 1.0
              (delivery_time rig 0));
        tc "duplicate subflow segment is ignored" (fun () ->
            let rig = make_rig ~mode:Tcp_subflow.Immediate () in
            arrive rig rig.sbf1 ~at:1.0 ~ss:0 ~data_seq:0;
            arrive rig rig.sbf1 ~at:1.5 ~ss:0 ~data_seq:0;
            ignore (Eventq.run rig.clock);
            Alcotest.(check (list int)) "once" [ 0 ] (delivered_seqs rig));
        tc "large reorder window drains correctly" (fun () ->
            let rig = make_rig ~mode:Tcp_subflow.Immediate () in
            (* data seqs 1..9 arrive first (reversed), then 0 unlocks *)
            List.iteri
              (fun i d ->
                arrive rig rig.sbf2 ~at:(1.0 +. (0.1 *. float_of_int i)) ~ss:i
                  ~data_seq:d)
              [ 9; 8; 7; 6; 5; 4; 3; 2; 1 ];
            arrive rig rig.sbf1 ~at:5.0 ~ss:0 ~data_seq:0;
            ignore (Eventq.run rig.clock);
            Alcotest.(check (list int)) "all in order" (List.init 10 Fun.id)
              (delivered_seqs rig);
            Alcotest.(check (float 1e-9)) "burst at unlock" 5.0
              (delivery_time rig 9));
        tc "ooo buffering shrinks the advertised window" (fun () ->
            let rig = make_rig ~mode:Tcp_subflow.Immediate () in
            let before = Meta_socket.rwnd_bytes rig.meta in
            arrive rig rig.sbf1 ~at:1.0 ~ss:0 ~data_seq:5;
            ignore (Eventq.run rig.clock);
            let after = Meta_socket.rwnd_bytes rig.meta in
            Alcotest.(check bool) "window shrank" true (after < before));
      ] );
  ]
