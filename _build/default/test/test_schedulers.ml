(** Per-scheduler semantic tests: each scheduler of the zoo does what its
    specification promises, checked both on crafted single executions and
    on small simulations. *)

open Progmp_runtime
open Helpers

let sched name =
  ignore (Schedulers.Specs.load_all ());
  match Scheduler.find name with
  | Some s -> s
  | None -> Alcotest.failf "scheduler %s not loaded" name

let v ?(backup = false) ?(throttled = false) ?(lossy = false) ?(cwnd = 10)
    ?(inflight = 0) ?(queued = 0) ?(throughput = 1_000_000) id rtt =
  {
    Subflow_view.default with
    Subflow_view.id;
    rtt_us = rtt;
    rtt_avg_us = rtt;
    cwnd;
    skbs_in_flight = inflight;
    queued;
    is_backup = backup;
    tsq_throttled = throttled;
    lossy;
    throughput_bps = throughput;
  }

let suite =
  [
    ( "schedulers",
      [
        tc "default: min-rtt subflow wins" (fun () ->
            let actions, _, _ = run_once (sched "default") default_env_spec in
            Alcotest.(check (list norm_testable)) "push on fast" [ N_push (1, 0) ]
              actions);
        tc "default: skips throttled subflows" (fun () ->
            let spec =
              {
                default_env_spec with
                views = [ v 0 40_000; v ~throttled:true 1 10_000 ];
              }
            in
            let actions, _, _ = run_once (sched "default") spec in
            Alcotest.(check (list norm_testable)) "slow gets it" [ N_push (0, 0) ]
              actions);
        tc "default: skips lossy subflows" (fun () ->
            let spec =
              {
                default_env_spec with
                views = [ v 0 40_000; v ~lossy:true 1 10_000 ];
              }
            in
            let actions, _, _ = run_once (sched "default") spec in
            Alcotest.(check (list norm_testable)) "slow gets it" [ N_push (0, 0) ]
              actions);
        tc "default: backup unused while an active subflow exists" (fun () ->
            let spec =
              {
                default_env_spec with
                views = [ v ~cwnd:1 ~inflight:1 0 40_000; v ~backup:true 1 10_000 ];
              }
            in
            (* active subflow exhausted, but backup must still not carry *)
            let actions, _, _ = run_once (sched "default") spec in
            Alcotest.(check (list norm_testable)) "nothing" [] actions);
        tc "default: backup used when no active subflow exists" (fun () ->
            let spec =
              {
                default_env_spec with
                views = [ v ~backup:true 0 40_000; v ~backup:true 1 10_000 ];
              }
            in
            let actions, _, _ = run_once (sched "default") spec in
            Alcotest.(check (list norm_testable)) "backup carries"
              [ N_push (1, 0) ] actions);
        tc "default: reinjection queue served first" (fun () ->
            let spec =
              {
                default_env_spec with
                qu_seqs = [ (9, [ 0 ]) ];
                rq_seqs = [ 9 ];
              }
            in
            let actions, _, _ = run_once (sched "default") spec in
            Alcotest.(check (list norm_testable)) "rq first" [ N_push (1, 9) ]
              actions);
        tc "default: cwnd-exhausted subflows skipped" (fun () ->
            let spec =
              {
                default_env_spec with
                views =
                  [ v ~cwnd:2 ~inflight:1 ~queued:1 0 40_000; v ~cwnd:2 ~inflight:2 1 10_000 ];
              }
            in
            let actions, _, _ = run_once (sched "default") spec in
            Alcotest.(check (list norm_testable)) "nothing free" [] actions);
        tc "round robin: cycles across executions" (fun () ->
            let rr = sched "round_robin" in
            let env, views = build default_env_spec in
            let a1 = List.map norm_action (Scheduler.execute rr env ~subflows:views) in
            let a2 = List.map norm_action (Scheduler.execute rr env ~subflows:views) in
            let a3 = List.map norm_action (Scheduler.execute rr env ~subflows:views) in
            Alcotest.(check (list norm_testable)) "first" [ N_push (0, 0) ] a1;
            Alcotest.(check (list norm_testable)) "second" [ N_push (1, 1) ] a2;
            Alcotest.(check (list norm_testable)) "wraps" [ N_push (0, 2) ] a3);
        tc "redundant: every open subflow gets a packet" (fun () ->
            let actions, _, _ = run_once (sched "redundant") default_env_spec in
            Alcotest.(check int) "two pushes" 2 (List.length actions));
        tc "redundant: catches up unacked packets not sent on a subflow"
          (fun () ->
            let spec =
              { default_env_spec with q_seqs = []; qu_seqs = [ (4, [ 0 ]) ] }
            in
            let actions, _, _ = run_once (sched "redundant") spec in
            Alcotest.(check (list norm_testable)) "copy to sbf 1"
              [ N_push (1, 4) ] actions);
        tc "opportunistic_redundant: one packet to all open, then dropped from Q"
          (fun () ->
            let actions, (q, _, _), _ =
              run_once (sched "opportunistic_redundant") default_env_spec
            in
            Alcotest.(check (list norm_testable)) "both subflows + drop"
              [ N_push (0, 0); N_push (1, 0); N_drop 0 ]
              actions;
            Alcotest.(check (list int)) "popped from q" [ 1; 2 ] q);
        tc "redundant_if_no_q: fresh data first" (fun () ->
            let actions, _, _ =
              run_once (sched "redundant_if_no_q") default_env_spec
            in
            (* both subflows pull fresh packets, no redundancy while Q
               is non-empty *)
            Alcotest.(check (list norm_testable)) "fresh to each"
              [ N_push (0, 0); N_push (1, 1) ]
              actions);
        tc "redundant_if_no_q: redundancy only when Q empty" (fun () ->
            let spec =
              { default_env_spec with q_seqs = []; qu_seqs = [ (6, [ 1 ]) ] }
            in
            let actions, _, _ = run_once (sched "redundant_if_no_q") spec in
            Alcotest.(check (list norm_testable)) "copy on idle sbf 0"
              [ N_push (0, 6) ] actions);
        tc "compensating: min-rtt while data remains" (fun () ->
            let actions, _, _ =
              run_once (sched "compensating")
                { default_env_spec with regs = [ (1, 1) ] }
            in
            Alcotest.(check (list norm_testable)) "minrtt" [ N_push (1, 0) ]
              actions);
        tc "compensating: retransmits in-flight on flow end" (fun () ->
            let spec =
              {
                default_env_spec with
                q_seqs = [];
                qu_seqs = [ (3, [ 0 ]); (4, [ 1 ]) ];
                regs = [ (1, 1) ] (* R2 = end of flow *);
              }
            in
            let actions, _, _ = run_once (sched "compensating") spec in
            Alcotest.(check (list norm_testable)) "cross copies"
              [ N_push (0, 4); N_push (1, 3) ]
              actions);
        tc "compensating: quiet without the end-of-flow signal" (fun () ->
            let spec =
              {
                default_env_spec with
                q_seqs = [];
                qu_seqs = [ (3, [ 0 ]); (4, [ 1 ]) ];
                regs = [];
              }
            in
            let actions, _, _ = run_once (sched "compensating") spec in
            Alcotest.(check (list norm_testable)) "nothing" [] actions);
        tc "selective_compensation: only under high rtt ratio" (fun () ->
            let mk ratio =
              {
                default_env_spec with
                q_seqs = [];
                qu_seqs = [ (3, [ 0 ]); (4, [ 1 ]) ];
                views = [ v 0 (10_000 * ratio); v 1 10_000 ];
                regs = [ (1, 1) ];
              }
            in
            let low, _, _ = run_once (sched "selective_compensation") (mk 1) in
            let high, _, _ = run_once (sched "selective_compensation") (mk 4) in
            Alcotest.(check (list norm_testable)) "ratio 1: quiet" [] low;
            Alcotest.(check int) "ratio 4: compensates" 2 (List.length high));
        tc "tap: preferred subflow used while open" (fun () ->
            let spec =
              {
                default_env_spec with
                views = [ v 0 10_000; v ~backup:true 1 40_000 ];
                regs = [ (0, 4_000_000) ];
              }
            in
            let actions, _, _ = run_once (sched "tap") spec in
            Alcotest.(check (list norm_testable)) "wifi" [ N_push (0, 0) ] actions);
        tc "tap: no spill when preferred capacity suffices" (fun () ->
            (* cwnd * mss / rtt = 40 * 1448 B / 10 ms = 5.8 MB/s >= target *)
            let spec =
              {
                default_env_spec with
                views =
                  [ v ~cwnd:40 ~inflight:40 0 10_000; v ~backup:true 1 40_000 ];
                regs = [ (0, 4_000_000) ];
              }
            in
            let actions, _, _ = run_once (sched "tap") spec in
            Alcotest.(check (list norm_testable)) "wait for wifi" [] actions);
        tc "tap: spills when capacity is short and preferred is blocked"
          (fun () ->
            (* cwnd * mss / rtt = 2 * 1448 B / 10 ms = 0.29 MB/s < target *)
            let spec =
              {
                default_env_spec with
                views =
                  [ v ~cwnd:2 ~inflight:2 0 10_000; v ~backup:true 1 40_000 ];
                regs = [ (0, 4_000_000) ];
              }
            in
            let actions, _, _ = run_once (sched "tap") spec in
            Alcotest.(check (list norm_testable)) "spill to lte"
              [ N_push (1, 0) ] actions);
        tc "tap: reinjections outrank fresh data" (fun () ->
            let spec =
              {
                default_env_spec with
                views = [ v 0 10_000; v ~backup:true 1 40_000 ];
                qu_seqs = [ (9, [ 0 ]) ];
                rq_seqs = [ 9 ];
                regs = [ (0, 4_000_000) ];
              }
            in
            let actions, _, _ = run_once (sched "tap") spec in
            Alcotest.(check (list norm_testable)) "rq first on preferred"
              [ N_push (0, 9) ] actions);
        tc "target_deadline: waits for a throttled preferred subflow when             capacity suffices"
          (fun () ->
            let spec =
              {
                default_env_spec with
                views =
                  [
                    v ~throttled:true ~cwnd:40 ~inflight:2 0 10_000;
                    v ~backup:true 1 40_000;
                  ];
                regs = [ (0, 1_000_000) ];
              }
            in
            let actions, _, _ = run_once (sched "target_deadline") spec in
            Alcotest.(check (list norm_testable)) "late binding" [] actions);
        tc "target_rtt: stays on preferred fast subflow" (fun () ->
            let spec =
              {
                default_env_spec with
                views = [ v 0 10_000; v ~backup:true 1 5_000 ];
                regs = [ (0, 20_000) ] (* tolerable RTT 20 ms *);
              }
            in
            let actions, _, _ = run_once (sched "target_rtt") spec in
            Alcotest.(check (list norm_testable)) "preferred ok"
              [ N_push (0, 0) ] actions);
        tc "target_rtt: falls back when preferred RTT violates target"
          (fun () ->
            let spec =
              {
                default_env_spec with
                views = [ v 0 80_000; v ~backup:true 1 5_000 ];
                regs = [ (0, 20_000) ];
              }
            in
            let actions, _, _ = run_once (sched "target_rtt") spec in
            Alcotest.(check (list norm_testable)) "backup rescues latency"
              [ N_push (1, 0) ] actions);
        tc "http2_aware: critical content only on the fastest subflow"
          (fun () ->
            (* packets: seq 0 deferred (PROP1=3), seq 1 critical; fastest
               subflow must carry seq 1 first even though seq 0 heads Q *)
            let env, views =
              build { default_env_spec with q_seqs = [] }
            in
            let p0 = Packet.create ~props:[| 3 |] ~seq:0 ~size:1448 ~now:0.0 () in
            let p1 = Packet.create ~props:[| 1 |] ~seq:1 ~size:1448 ~now:0.0 () in
            Pqueue.push_back env.Env.q p0;
            Pqueue.push_back env.Env.q p1;
            let actions =
              List.map norm_action
                (Scheduler.execute (sched "http2_aware") env ~subflows:views)
            in
            Alcotest.(check (list norm_testable)) "critical first on fast"
              [ N_push (1, 1) ] actions);
        tc "http2_aware: deferred content avoids backup subflows" (fun () ->
            let env, _ = build { default_env_spec with q_seqs = [] } in
            let views = [| v 0 10_000; v ~backup:true 1 5_000 |] in
            let p = Packet.create ~props:[| 3 |] ~seq:0 ~size:1448 ~now:0.0 () in
            Pqueue.push_back env.Env.q p;
            let actions =
              List.map norm_action
                (Scheduler.execute (sched "http2_aware") env ~subflows:views)
            in
            (* even though backup has lower RTT, deferred data stays on
               the preferred subflow *)
            Alcotest.(check (list norm_testable)) "preferred only"
              [ N_push (0, 0) ] actions);
        tc "handover: target subflow receives catch-up copies" (fun () ->
            let spec =
              {
                default_env_spec with
                q_seqs = [ 0 ];
                qu_seqs = [ (5, [ 0 ]) ];
                regs = [ (0, 1) ] (* R1 = handover target id 1 *);
              }
            in
            let actions, _, _ = run_once (sched "handover") spec in
            Alcotest.(check (list norm_testable)) "catch-up first"
              [ N_push (1, 5) ] actions);
        tc "opportunistic_retransmission: retransmits when window blocks"
          (fun () ->
            let views =
              [| { (v 0 10_000) with Subflow_view.receive_window_bytes = 0 } |]
            in
            let spec =
              {
                default_env_spec with
                q_seqs = [ 0 ];
                qu_seqs = [ (7, [ 1 ]) ];
                views = [];
              }
            in
            let env, _ = build spec in
            let actions =
              List.map norm_action
                (Scheduler.execute (sched "opportunistic_retransmission") env
                   ~subflows:views)
            in
            Alcotest.(check (list norm_testable)) "old packet retransmitted"
              [ N_push (0, 7) ] actions);
      ] );
  ]

(* Table 2 design-space additions. *)
let design_space_suite =
  [
    ( "schedulers-design-space",
      [
        tc "backup_redundant: no insurance while actives are healthy"
          (fun () ->
            let spec =
              {
                default_env_spec with
                q_seqs = [ 0 ];
                qu_seqs = [ (5, [ 0 ]) ];
                views = [ v 0 10_000; v ~backup:true 1 40_000 ];
              }
            in
            let actions, _, _ = run_once (sched "backup_redundant") spec in
            Alcotest.(check (list norm_testable)) "fresh data only"
              [ N_push (0, 0) ] actions);
        tc "backup_redundant: shaky actives trigger backup copies" (fun () ->
            let shaky =
              {
                (v 0 10_000) with
                Subflow_view.rtt_var_us = 8_000 (* 4*var > avg *);
              }
            in
            let spec =
              {
                default_env_spec with
                q_seqs = [ 0 ];
                qu_seqs = [ (5, [ 0 ]) ];
                views = [ shaky; v ~backup:true 1 40_000 ];
              }
            in
            let actions, _, _ = run_once (sched "backup_redundant") spec in
            Alcotest.(check (list norm_testable)) "fresh + insurance copy"
              [ N_push (0, 0); N_push (1, 5) ]
              actions);
        tc "backup_redundant: lossy active also triggers insurance" (fun () ->
            let spec =
              {
                default_env_spec with
                q_seqs = [];
                qu_seqs = [ (5, [ 0 ]) ];
                views = [ v ~lossy:true 0 10_000; v ~backup:true 1 40_000 ];
              }
            in
            let actions, _, _ = run_once (sched "backup_redundant") spec in
            Alcotest.(check (list norm_testable)) "insurance copy"
              [ N_push (1, 5) ] actions);
        tc "flow_size_aware: bulk phase uses min-RTT over all subflows"
          (fun () ->
            let spec =
              {
                default_env_spec with
                views = [ v ~cwnd:10 ~inflight:10 1 10_000; v 0 40_000 ];
                regs = [ (0, 10_000_000) ] (* lots remaining *);
              }
            in
            (* fast subflow blocked: bulk data accepts the slow one *)
            let actions, _, _ = run_once (sched "flow_size_aware") spec in
            Alcotest.(check (list norm_testable)) "slow subflow used"
              [ N_push (0, 0) ] actions);
        tc "flow_size_aware: flow tail avoids the slow subflow" (fun () ->
            let spec =
              {
                default_env_spec with
                views = [ v ~cwnd:10 ~inflight:10 1 10_000; v 0 40_000 ];
                regs = [ (0, 2_000) ] (* tail: < one window of the fast one *);
              }
            in
            (* fast subflow blocked, but the tail still waits for it *)
            let actions, _, _ = run_once (sched "flow_size_aware") spec in
            Alcotest.(check (list norm_testable)) "wait for fast" [] actions);
        tc "flow_size_aware: tail goes to the fast subflow when open"
          (fun () ->
            let spec =
              {
                default_env_spec with
                views = [ v 1 10_000; v 0 40_000 ];
                regs = [ (0, 2_000) ];
              }
            in
            let actions, _, _ = run_once (sched "flow_size_aware") spec in
            Alcotest.(check (list norm_testable)) "fast subflow"
              [ N_push (1, 0) ] actions);
      ] );
  ]

(* probing scheduler (Table 2). *)
let probing_suite =
  [
    ( "schedulers-probing",
      [
        tc "probing sends a probe copy on idle subflows every 64th execution"
          (fun () ->
            let p = sched "probing" in
            let env, _ = build { default_env_spec with q_seqs = [] } in
            (* one busy subflow, one idle; a packet is in flight *)
            let views = [| v ~inflight:3 0 10_000; v 1 40_000 |] in
            let pkt = Packet.create ~seq:7 ~size:1448 ~now:0.0 () in
            Packet.mark_sent pkt ~sbf_id:0;
            Pqueue.push_back env.Env.qu pkt;
            let probes = ref 0 in
            for _ = 1 to 130 do
              List.iter
                (fun a ->
                  match Helpers.norm_action a with
                  | N_push (1, 7) -> incr probes
                  | N_push _ | N_drop _ -> ())
                (Scheduler.execute p env ~subflows:views)
            done;
            Alcotest.(check int) "two probes in 130 executions" 2 !probes);
      ] );
  ]

(* Additional edge-case coverage for the preference/content families. *)
let edge_suite =
  [
    ( "schedulers-edges",
      [
        tc "http2_aware: initial-view beats deferred regardless of order"
          (fun () ->
            let env, views = build { default_env_spec with q_seqs = [] } in
            let p0 = Packet.create ~props:[| 3 |] ~seq:0 ~size:1448 ~now:0.0 () in
            let p1 = Packet.create ~props:[| 2 |] ~seq:1 ~size:1448 ~now:0.0 () in
            Pqueue.push_back env.Env.q p0;
            Pqueue.push_back env.Env.q p1;
            let actions =
              List.map norm_action
                (Scheduler.execute (sched "http2_aware") env ~subflows:views)
            in
            Alcotest.(check (list norm_testable)) "initial view first"
              [ N_push (1, 1) ] actions);
        tc "http2_aware: deferred data waits when only backups are open"
          (fun () ->
            let env, _ = build { default_env_spec with q_seqs = [] } in
            let views =
              [| v ~cwnd:1 ~inflight:1 0 10_000; v ~backup:true 1 5_000 |]
            in
            let p = Packet.create ~props:[| 3 |] ~seq:0 ~size:1448 ~now:0.0 () in
            Pqueue.push_back env.Env.q p;
            let actions =
              Scheduler.execute (sched "http2_aware") env ~subflows:views
            in
            Alcotest.(check int) "no push" 0 (List.length actions));
        tc "http2_aware: critical waits for the fastest subflow" (fun () ->
            (* the fastest subflow has no window: the critical packet is
               NOT diverted to the slower one *)
            let env, _ = build { default_env_spec with q_seqs = [] } in
            let views = [| v ~cwnd:1 ~inflight:1 0 5_000; v 1 40_000 |] in
            let p = Packet.create ~props:[| 1 |] ~seq:0 ~size:1448 ~now:0.0 () in
            Pqueue.push_back env.Env.q p;
            let actions =
              Scheduler.execute (sched "http2_aware") env ~subflows:views
            in
            Alcotest.(check int) "waits" 0 (List.length actions));
        tc "handover: without handover signal behaves like min-RTT" (fun () ->
            let spec =
              { default_env_spec with regs = [ (0, 99) ] (* no such id *) }
            in
            let actions, _, _ = run_once (sched "handover") spec in
            Alcotest.(check (list norm_testable)) "minrtt fallback"
              [ N_push (1, 0) ] actions);
        tc "handover: drains RQ on the target before fresh data" (fun () ->
            let spec =
              {
                default_env_spec with
                q_seqs = [ 0 ];
                qu_seqs = [ (5, [ 0; 1 ]) ];
                rq_seqs = [ 5 ];
                regs = [ (0, 1) ];
              }
            in
            (* packet 5 already sent on both, so catch-up finds nothing and
               RQ is served next *)
            let actions, _, _ = run_once (sched "handover") spec in
            Alcotest.(check (list norm_testable)) "rq first"
              [ N_push (1, 5) ] actions);
        tc "selective_compensation: single subflow never compensates"
          (fun () ->
            let spec =
              {
                default_env_spec with
                q_seqs = [];
                qu_seqs = [ (3, [ 0 ]) ];
                views = [ v 0 10_000 ];
                regs = [ (1, 1) ];
              }
            in
            (* fast = slow = the only subflow: ratio is 1 *)
            let actions, _, _ =
              run_once (sched "selective_compensation") spec
            in
            Alcotest.(check (list norm_testable)) "quiet" [] actions);
        tc "tap: reinjection spills to backup when preferred is closed and \
            capacity short"
          (fun () ->
            let spec =
              {
                Helpers.q_seqs = [];
                qu_seqs = [ (8, [ 0 ]) ];
                rq_seqs = [ 8 ];
                views =
                  [ v ~cwnd:2 ~inflight:2 0 10_000; v ~backup:true 1 40_000 ];
                regs = [ (0, 4_000_000) ];
              }
            in
            let actions, _, _ = run_once (sched "tap") spec in
            Alcotest.(check (list norm_testable)) "rescued on backup"
              [ N_push (1, 8) ] actions);
        tc "tap: reinjection stays on preferred when open" (fun () ->
            let spec =
              {
                Helpers.q_seqs = [ 0 ];
                qu_seqs = [ (8, [ 1 ]) ];
                rq_seqs = [ 8 ];
                views = [ v 0 10_000; v ~backup:true 1 40_000 ];
                regs = [ (0, 4_000_000) ];
              }
            in
            let actions, _, _ = run_once (sched "tap") spec in
            Alcotest.(check (list norm_testable)) "preferred reinjection"
              [ N_push (0, 8) ] actions);
        tc "round robin: lossy subflows are skipped by the cursor" (fun () ->
            let spec =
              {
                default_env_spec with
                views = [ v ~lossy:true 0 10_000; v 1 40_000 ];
              }
            in
            let rr = sched "round_robin" in
            let env, views = build spec in
            let a1 =
              List.map norm_action (Scheduler.execute rr env ~subflows:views)
            in
            let a2 =
              List.map norm_action (Scheduler.execute rr env ~subflows:views)
            in
            Alcotest.(check (list norm_testable)) "healthy only (1st)"
              [ N_push (1, 0) ] a1;
            Alcotest.(check (list norm_testable)) "healthy only (2nd)"
              [ N_push (1, 1) ] a2);
      ] );
  ]

(* §3.2 priority-aware redundancy. *)
let priority_suite =
  [
    ( "schedulers-priority",
      [
        tc "priority packets jump the queue and go everywhere" (fun () ->
            let env, _ = build { default_env_spec with q_seqs = [] } in
            let views = [| v 0 10_000; v ~backup:true 1 40_000 |] in
            let bulk = Packet.create ~seq:0 ~size:1448 ~now:0.0 () in
            let prio =
              Packet.create ~props:[| 0; 1 |] ~seq:1 ~size:200 ~now:0.0 ()
            in
            Pqueue.push_back env.Env.q bulk;
            Pqueue.push_back env.Env.q prio;
            let actions =
              List.map norm_action
                (Scheduler.execute (sched "priority_redundant") env
                   ~subflows:views)
            in
            Alcotest.(check (list norm_testable))
              "redundant on both, including the backup"
              [ N_push (0, 1); N_push (1, 1) ]
              actions;
            (* the priority packet left Q; bulk remains *)
            Alcotest.(check (list int)) "bulk stays" [ 0 ] (seqs_of env.Env.q));
        tc "without priority packets, bulk follows min-RTT on non-backups"
          (fun () ->
            let spec =
              {
                default_env_spec with
                views = [ v 0 10_000; v ~backup:true 1 5_000 ];
              }
            in
            let actions, _, _ = run_once (sched "priority_redundant") spec in
            Alcotest.(check (list norm_testable)) "non-backup despite RTT"
              [ N_push (0, 0) ] actions);
      ] );
  ]
