(** QCheck generators: random well-typed scheduler programs (by
    construction) and random scheduling environments. Used to
    differential-test the three execution backends and to fuzz the
    compiler pipeline. *)

open Progmp_lang
module G = QCheck2.Gen

let ( let* ) = G.( let* )

let e d = Ast.mk_expr d

(* A typing context mapping in-scope variable names to their types, plus
   a counter for fresh names (freshness guarantees no shadowing). *)
type ctx = { vars : (string * Ty.t) list; counter : int ref }

let fresh ctx =
  let n = !(ctx.counter) in
  incr ctx.counter;
  Fmt.str "v%d" n

let vars_of ctx ty = List.filter (fun (_, t) -> t = ty) ctx.vars

let int_sbf_props =
  [ "RTT"; "RTT_AVG"; "RTT_VAR"; "CWND"; "SKBS_IN_FLIGHT"; "QUEUED"; "ID";
    "LOST_SKBS"; "THROUGHPUT"; "MSS" ]

let bool_sbf_props = [ "IS_BACKUP"; "TSQ_THROTTLED"; "LOSSY" ]

let pkt_props = [ "SIZE"; "SEQ"; "SENT_COUNT"; "PROP1"; "PROP2" ]

let queues = [ Ast.Send_queue; Ast.Unacked_queue; Ast.Reinject_queue ]

let member recv name args = e (Ast.Member (recv, name, args))

let lambda ctx ~param_ty ~gen_body =
  let name = fresh ctx in
  let ctx' = { ctx with vars = (name, param_ty) :: ctx.vars } in
  G.map (fun body -> Ast.Arg_lambda { Ast.param = name; body }) (gen_body ctx')

(* Mutually recursive, depth-bounded expression generators. Every
   generated expression is well-typed in [ctx]. *)
let rec gen_int ctx depth : Ast.expr G.t =
  let leaves =
    [ G.map (fun n -> e (Ast.Int (abs n mod 100))) G.small_int;
      G.map (fun r -> e (Ast.Register (abs r mod 6))) G.small_int ]
    @
    match vars_of ctx Ty.Int with
    | [] -> []
    | vs -> [ G.map (fun i -> e (Ast.Var (fst (List.nth vs (abs i mod List.length vs))))) G.small_int ]
  in
  if depth <= 0 then G.oneof leaves
  else
    G.oneof
      (leaves
      @ [
          (let* op = G.oneofl [ Ast.Add; Ast.Sub; Ast.Mul; Ast.Div; Ast.Mod ] in
           let* a = gen_int ctx (depth - 1) in
           let* b = gen_int ctx (depth - 1) in
           G.return (e (Ast.Binop (op, a, b))));
          (let* a = gen_int ctx (depth - 1) in
           G.return (e (Ast.Unop (Ast.Neg, a))));
          (let* s = gen_subflow ctx (depth - 1) in
           let* p = G.oneofl int_sbf_props in
           G.return (member s p []));
          (let* p = gen_packet_pure ctx (depth - 1) in
           let* prop = G.oneofl pkt_props in
           G.return (member p prop []));
          (let* v = gen_view ctx (depth - 1) in
           G.return (member v "COUNT" []));
          (let* l = gen_sbfs ctx (depth - 1) in
           G.return (member l "COUNT" []));
          (let* l = gen_sbfs ctx (depth - 1) in
           let* lam = lambda ctx ~param_ty:Ty.Subflow ~gen_body:(fun c -> gen_int c (depth - 1)) in
           G.return (member l "SUM" [ lam ]));
        ])

and gen_bool ctx depth : Ast.expr G.t =
  let leaves = [ G.map (fun b -> e (Ast.Bool b)) G.bool ] in
  if depth <= 0 then G.oneof leaves
  else
    G.oneof
      (leaves
      @ [
          (let* op = G.oneofl [ Ast.Lt; Ast.Le; Ast.Gt; Ast.Ge; Ast.Eq; Ast.Neq ] in
           let* a = gen_int ctx (depth - 1) in
           let* b = gen_int ctx (depth - 1) in
           G.return (e (Ast.Binop (op, a, b))));
          (let* op = G.oneofl [ Ast.And; Ast.Or ] in
           let* a = gen_bool ctx (depth - 1) in
           let* b = gen_bool ctx (depth - 1) in
           G.return (e (Ast.Binop (op, a, b))));
          (let* a = gen_bool ctx (depth - 1) in
           G.return (e (Ast.Unop (Ast.Not, a))));
          (let* s = gen_subflow ctx (depth - 1) in
           let* p = G.oneofl bool_sbf_props in
           G.return (member s p []));
          (let* s = gen_subflow ctx (depth - 1) in
           G.return (e (Ast.Binop (Ast.Neq, s, e Ast.Null))));
          (let* p = gen_packet_pure ctx (depth - 1) in
           G.return (e (Ast.Binop (Ast.Eq, p, e Ast.Null))));
          (let* p = gen_packet_pure ctx (depth - 1) in
           let* s = gen_subflow ctx (depth - 1) in
           G.return (member p "SENT_ON" [ Ast.Arg_expr s ]));
          (let* s = gen_subflow ctx (depth - 1) in
           let* p = gen_packet_pure ctx (depth - 1) in
           G.return (member s "HAS_WINDOW_FOR" [ Ast.Arg_expr p ]));
          (let* v = gen_view ctx (depth - 1) in
           G.return (member v "EMPTY" []));
          (let* l = gen_sbfs ctx (depth - 1) in
           G.return (member l "EMPTY" []));
        ])

and gen_subflow ctx depth : Ast.expr G.t =
  let from_list =
    let* l = gen_sbfs ctx (if depth <= 0 then 0 else depth - 1) in
    G.oneof
      [
        (let* lam =
           lambda ctx ~param_ty:Ty.Subflow ~gen_body:(fun c ->
               gen_int c (max 0 (depth - 1)))
         in
         let* op = G.oneofl [ "MIN"; "MAX" ] in
         G.return (member l op [ lam ]));
        (let* i = gen_int ctx 0 in
         G.return (member l "GET" [ Ast.Arg_expr i ]));
      ]
  in
  match vars_of ctx Ty.Subflow with
  | [] -> from_list
  | vs ->
      G.oneof
        [
          from_list;
          G.map
            (fun i -> e (Ast.Var (fst (List.nth vs (abs i mod List.length vs)))))
            G.small_int;
        ]

and gen_sbfs ctx depth : Ast.expr G.t =
  let base =
    match vars_of ctx Ty.Subflow_list with
    | [] -> [ G.return (e Ast.Subflows) ]
    | vs ->
        [
          G.return (e Ast.Subflows);
          G.map
            (fun i -> e (Ast.Var (fst (List.nth vs (abs i mod List.length vs)))))
            G.small_int;
        ]
  in
  if depth <= 0 then G.oneof base
  else
    G.oneof
      (base
      @ [
          (let* l = gen_sbfs ctx (depth - 1) in
           let* lam =
             lambda ctx ~param_ty:Ty.Subflow ~gen_body:(fun c ->
                 gen_bool c (depth - 1))
           in
           G.return (member l "FILTER" [ lam ]));
        ])

and gen_view ctx depth : Ast.expr G.t =
  let* q = G.oneofl queues in
  let base = e (Ast.Queue q) in
  if depth <= 0 then G.return base
  else
    let* nfilters = G.int_bound 2 in
    let rec add acc n =
      if n = 0 then G.return acc
      else
        let* lam =
          lambda ctx ~param_ty:Ty.Packet ~gen_body:(fun c ->
              gen_bool c (depth - 1))
        in
        add (member acc "FILTER" [ lam ]) (n - 1)
    in
    add base nfilters

and gen_packet_pure ctx depth : Ast.expr G.t =
  let from_view =
    let* v = gen_view ctx (if depth <= 0 then 0 else depth - 1) in
    G.oneof
      [
        G.return (member v "TOP" []);
        (let* lam =
           lambda ctx ~param_ty:Ty.Packet ~gen_body:(fun c ->
               gen_int c (max 0 (depth - 1)))
         in
         let* op = G.oneofl [ "MIN"; "MAX" ] in
         G.return (member v op [ lam ]));
      ]
  in
  match vars_of ctx Ty.Packet with
  | [] -> from_view
  | vs ->
      G.oneof
        [
          from_view;
          G.map
            (fun i -> e (Ast.Var (fst (List.nth vs (abs i mod List.length vs)))))
            G.small_int;
        ]

(* Packet expression in an effect-permitted position: may POP. *)
and gen_packet_eff ctx depth : Ast.expr G.t =
  G.oneof
    [
      gen_packet_pure ctx depth;
      (let* v = gen_view ctx depth in
       G.return (member v "POP" []));
    ]

let gen_storable ctx depth : (Ast.expr * Ty.t) G.t =
  let* choice = G.int_bound 4 in
  match choice with
  | 0 -> G.map (fun x -> (x, Ty.Int)) (gen_int ctx depth)
  | 1 -> G.map (fun x -> (x, Ty.Bool)) (gen_bool ctx depth)
  | 2 -> G.map (fun x -> (x, Ty.Subflow)) (gen_subflow ctx depth)
  | 3 -> G.map (fun x -> (x, Ty.Subflow_list)) (gen_sbfs ctx depth)
  | _ -> G.map (fun x -> (x, Ty.Packet)) (gen_packet_eff ctx depth)

let rec gen_stmt ctx depth : (Ast.stmt * ctx) G.t =
  let push =
    let* s = gen_subflow ctx depth in
    let* p = gen_packet_eff ctx depth in
    G.return
      (Ast.mk_stmt (Ast.Expr_stmt (member s "PUSH" [ Ast.Arg_expr p ])), ctx)
  in
  let decl =
    let* rhs, ty = gen_storable ctx depth in
    let name = fresh ctx in
    G.return
      ( Ast.mk_stmt (Ast.Var_decl (name, rhs)),
        { ctx with vars = (name, ty) :: ctx.vars } )
  in
  let setr =
    let* r = G.int_bound 5 in
    let* v = gen_int ctx depth in
    G.return (Ast.mk_stmt (Ast.Set_register (r, v)), ctx)
  in
  let dropp =
    let* v = gen_view ctx depth in
    G.return (Ast.mk_stmt (Ast.Drop (member v "POP" [])), ctx)
  in
  if depth <= 0 then G.oneof [ push; decl; setr ]
  else
    let ifst =
      let* cond = gen_bool ctx depth in
      let* then_ = gen_block ctx (depth - 1) 2 in
      let* has_else = G.bool in
      let* else_ =
        if has_else then G.map Option.some (gen_block ctx (depth - 1) 2)
        else G.return None
      in
      G.return (Ast.mk_stmt (Ast.If (cond, then_, else_)), ctx)
    in
    let foreach =
      let* src = gen_sbfs ctx depth in
      let name = fresh ctx in
      let ctx' = { ctx with vars = (name, Ty.Subflow) :: ctx.vars } in
      let* body = gen_block ctx' (depth - 1) 2 in
      G.return (Ast.mk_stmt (Ast.Foreach (name, src, body)), ctx)
    in
    G.oneof [ push; decl; setr; dropp; ifst; foreach ]

and gen_block ctx depth max_len : Ast.block G.t =
  let* len = G.int_range 1 max_len in
  let rec go ctx n acc =
    if n = 0 then G.return (List.rev acc)
    else
      let* stmt, ctx' = gen_stmt ctx depth in
      go ctx' (n - 1) (stmt :: acc)
  in
  go ctx len []

(** Random well-typed program (as surface AST). *)
let gen_program : Ast.program G.t =
  let ctx = { vars = []; counter = ref 0 } in
  let* depth = G.int_range 1 3 in
  gen_block ctx depth 4

(* ---------- random environments ---------- *)

let gen_view_spec : Progmp_runtime.Subflow_view.t G.t =
  let open Progmp_runtime in
  let* rtt = G.int_range 1_000 100_000 in
  let* cwnd = G.int_range 1 32 in
  let* inflight = G.int_range 0 32 in
  let* queued = G.int_range 0 8 in
  let* backup = G.bool in
  let* throttled = G.bool in
  let* lossy = G.bool in
  let* rttvar = G.int_range 0 20_000 in
  G.return
    {
      Subflow_view.default with
      Subflow_view.rtt_us = rtt;
      rtt_avg_us = rtt;
      rtt_var_us = rttvar;
      cwnd;
      skbs_in_flight = inflight;
      queued;
      is_backup = backup;
      tsq_throttled = throttled;
      lossy;
      throughput_bps = cwnd * 1448 * 1_000_000 / rtt;
    }

let gen_env_spec : Helpers.env_spec G.t =
  let* nsbf = G.int_bound 4 in
  let* views = G.list_repeat nsbf gen_view_spec in
  let views = List.mapi (fun i v -> { v with Progmp_runtime.Subflow_view.id = i }) views in
  let* nq = G.int_bound 6 in
  let* nqu = G.int_bound 5 in
  (* one (in_rq, sent_mask) pair per QU entry, so shrinking stays
     consistent *)
  let* qu_entries =
    G.list_repeat nqu
      (G.pair G.bool (G.int_bound (max 1 ((1 lsl max 1 nsbf) - 1))))
  in
  let q_seqs = List.init nq Fun.id in
  let qu_seqs =
    List.mapi
      (fun i (_, mask) ->
        let sent_on =
          List.filteri
            (fun b _ -> mask land (1 lsl b) <> 0)
            (List.init (max 1 nsbf) Fun.id)
        in
        (100 + i, sent_on))
      qu_entries
  in
  let rq_seqs =
    List.filteri (fun i _ -> fst (List.nth qu_entries i)) (List.map fst qu_seqs)
  in
  let* r1 = G.int_bound 1000 in
  let* r2 = G.int_bound 2 in
  G.return
    {
      Helpers.q_seqs;
      qu_seqs;
      rq_seqs;
      views;
      regs = [ (0, r1); (1, r2) ];
    }
