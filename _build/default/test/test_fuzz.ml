(** Robustness fuzzing: arbitrary input never crashes the toolchain —
    the frontend either produces a program or raises one of its three
    documented, located errors; printable garbage, truncations and
    mutations of valid specifications are all handled. *)

open Progmp_lang
open Helpers

let load_or_error src =
  match Typecheck.compile_source src with
  | (_ : Tast.program) -> true
  | exception Lexer.Error (_, _) -> true
  | exception Parser.Error (_, _) -> true
  | exception Typecheck.Error (_, _) -> true

(* Arbitrary printable strings. *)
let gen_garbage =
  QCheck2.Gen.(string_size ~gen:(map Char.chr (int_range 32 126)) (int_bound 200))

let fuzz_garbage =
  QCheck2.Test.make ~name:"frontend survives printable garbage" ~count:2000
    gen_garbage load_or_error

(* Token soup: random sequences of valid lexemes stress the parser. *)
let lexemes =
  [|
    "IF"; "ELSE"; "VAR"; "FOREACH"; "IN"; "SET"; "DROP"; "RETURN"; "TRUE";
    "FALSE"; "NULL"; "Q"; "QU"; "RQ"; "SUBFLOWS"; "AND"; "OR"; "R1"; "R2";
    "sbf"; "skb"; "x"; "42"; "0"; "=>"; "."; ","; ";"; "("; ")"; "{"; "}";
    "="; "=="; "!="; "<"; "<="; ">"; ">="; "+"; "-"; "*"; "/"; "%"; "!";
    "RTT"; "CWND"; "FILTER"; "MIN"; "MAX"; "TOP"; "POP"; "PUSH"; "EMPTY";
    "COUNT";
  |]

let gen_token_soup =
  QCheck2.Gen.(
    map (String.concat " ")
      (list_size (int_bound 60) (oneofl (Array.to_list lexemes))))

let fuzz_soup =
  QCheck2.Test.make ~name:"frontend survives token soup" ~count:2000
    gen_token_soup load_or_error

(* Mutations of valid specifications: delete/duplicate a random chunk. *)
let gen_mutant =
  let open QCheck2.Gen in
  let* _, src = oneofl Schedulers.Specs.all in
  let* pos = int_bound (max 1 (String.length src - 1)) in
  let* len = int_bound 20 in
  let* mode = bool in
  let len = min len (String.length src - pos) in
  if mode then
    (* delete *)
    return (String.sub src 0 pos ^ String.sub src (pos + len) (String.length src - pos - len))
  else
    (* duplicate *)
    return (String.sub src 0 (pos + len) ^ String.sub src pos (String.length src - pos))

let fuzz_mutants =
  QCheck2.Test.make ~name:"frontend survives mutated zoo specs" ~count:2000
    gen_mutant load_or_error

(* Whatever parses and checks must also compile, verify and execute
   without OCaml-level exceptions. *)
let fuzz_full_pipeline =
  QCheck2.Test.make ~name:"checked mutants run on all backends" ~count:500
    gen_mutant (fun src ->
      match Typecheck.compile_source src with
      | exception (Lexer.Error _ | Parser.Error _ | Typecheck.Error _) -> true
      | program -> (
          let program = Optimize.program program in
          let env, views = build default_env_spec in
          Progmp_runtime.Env.begin_execution env ~subflows:views;
          Progmp_runtime.Interpreter.run program env;
          ignore (Progmp_runtime.Env.finish_execution env);
          match Progmp_compiler.Compile.compile program with
          | prog ->
              let env2, views2 = build default_env_spec in
              Progmp_runtime.Env.begin_execution env2 ~subflows:views2;
              Progmp_compiler.Vm.run prog env2;
              ignore (Progmp_runtime.Env.finish_execution env2);
              true
          | exception Progmp_compiler.Compile.Rejected _ -> false))

let suite =
  [
    ( "fuzz",
      [
        QCheck_alcotest.to_alcotest fuzz_garbage;
        QCheck_alcotest.to_alcotest fuzz_soup;
        QCheck_alcotest.to_alcotest fuzz_mutants;
        QCheck_alcotest.to_alcotest fuzz_full_pipeline;
      ] );
  ]
