(** Differential testing of the three execution backends (the paper's
    interpreter / AOT / eBPF-JIT triad): for the whole scheduler zoo and
    for thousands of randomly generated well-typed programs, all backends
    must produce identical action sequences, queue states and register
    files on identical environments. *)

open Progmp_runtime
open Helpers

type observation = {
  o_actions : norm_action list;
  o_queues : int list * int list * int list;
  o_regs : int list;
}

let pp_obs ppf o =
  let q, qu, rq = o.o_queues in
  Fmt.pf ppf "actions=[%a] q=[%a] qu=[%a] rq=[%a] regs=[%a]"
    Fmt.(list ~sep:(any ";") pp_norm)
    o.o_actions
    Fmt.(list ~sep:(any ",") int)
    q
    Fmt.(list ~sep:(any ",") int)
    qu
    Fmt.(list ~sep:(any ",") int)
    rq
    Fmt.(list ~sep:(any ",") int)
    o.o_regs

let obs_testable = Alcotest.testable pp_obs ( = )

let observe engine (program : Progmp_lang.Tast.program) spec =
  let env, views = build spec in
  Env.begin_execution env ~subflows:views;
  engine env;
  let actions = List.map norm_action (Env.finish_execution env) in
  {
    o_actions = actions;
    o_queues = (seqs_of env.Env.q, seqs_of env.Env.qu, seqs_of env.Env.rq);
    o_regs = Array.to_list env.Env.registers;
  }
  [@@warning "-27"]

(* All engines come from the registry: the differential suite then
   exercises exactly the factories production code selects by name. *)
let () = Progmp_compiler.Compile.register_engines ()

let backends (program : Progmp_lang.Tast.program) =
  List.map
    (fun name -> (name, Engine.instantiate name program))
    (Engine.names ())

let interpreter_first engines =
  let is_interp (name, _) = String.equal name "interpreter" in
  List.filter is_interp engines
  @ List.filter (fun e -> not (is_interp e)) engines

let agree program spec =
  match interpreter_first (backends program) with
  | (_, ref_engine) :: rest ->
      let reference = observe ref_engine program spec in
      List.iter
        (fun (name, engine) ->
          let o = observe engine program spec in
          Alcotest.check obs_testable (name ^ " agrees with interpreter")
            reference o)
        rest
  | [] -> assert false

(* Hand-picked env specs stressing different aspects. *)
let specs =
  let v ?(backup = false) ?(throttled = false) ?(lossy = false)
      ?(cwnd = 10) ?(inflight = 0) ?(queued = 0) id rtt =
    {
      Subflow_view.default with
      Subflow_view.id;
      rtt_us = rtt;
      rtt_avg_us = rtt;
      cwnd;
      skbs_in_flight = inflight;
      queued;
      is_backup = backup;
      tsq_throttled = throttled;
      lossy;
      throughput_bps = cwnd * 1448 * 1_000_000 / rtt;
    }
  in
  [
    ("no subflows", { default_env_spec with views = [] });
    ("empty queues", { default_env_spec with q_seqs = [] });
    ("default", default_env_spec);
    ( "exhausted cwnd",
      {
        default_env_spec with
        views = [ v ~cwnd:2 ~inflight:2 0 10_000; v ~cwnd:4 ~inflight:1 1 40_000 ];
      } );
    ( "all backup",
      {
        default_env_spec with
        views = [ v ~backup:true 0 10_000; v ~backup:true 1 40_000 ];
      } );
    ( "throttled and lossy",
      {
        default_env_spec with
        views = [ v ~throttled:true 0 10_000; v ~lossy:true 1 40_000 ];
      } );
    ( "reinjections pending",
      {
        default_env_spec with
        qu_seqs = [ (50, [ 0 ]); (51, [ 0; 1 ]) ];
        rq_seqs = [ 50 ];
        regs = [ (0, 1_000_000); (1, 1) ];
      } );
    ( "four subflows",
      {
        q_seqs = [ 0; 1; 2; 3; 4; 5 ];
        qu_seqs = [ (10, [ 0 ]); (11, [ 1; 2 ]); (12, []) ];
        rq_seqs = [ 12 ];
        views =
          [
            v 0 10_000; v ~backup:true 1 40_000; v ~cwnd:1 ~inflight:1 2 5_000;
            v ~lossy:true 3 80_000;
          ];
        regs = [ (0, 2_000_000); (1, 1); (2, 1) ];
      } );
    ( "single subflow, deep queues",
      {
        q_seqs = List.init 40 Fun.id;
        qu_seqs = List.init 10 (fun i -> (100 + i, [ 0 ]));
        rq_seqs = [ 104; 107 ];
        views = [ v ~cwnd:32 ~inflight:10 0 15_000 ];
        regs = [ (0, 500_000) ];
      } );
    ( "equal RTTs (tie-breaking)",
      {
        default_env_spec with
        views = [ v 0 20_000; v 1 20_000; v 2 20_000 ];
      } );
    ( "registers at extremes",
      {
        default_env_spec with
        regs = [ (0, max_int / 2); (1, -1); (3, min_int / 2) ];
      } );
  ]

let zoo_cases =
  List.concat_map
    (fun (sched_name, src) ->
      let program = Progmp_lang.Typecheck.compile_source src in
      List.map
        (fun (spec_name, spec) ->
          tc
            (Fmt.str "%s / %s" sched_name spec_name)
            (fun () -> agree program spec))
        specs)
    Schedulers.Specs.all

(* Native oracles: the hand-written OCaml schedulers must match their DSL
   counterparts action-for-action. *)
let native_cases =
  let pairs =
    [
      ("default", Schedulers.Specs.default, Schedulers.Native.default);
      ("round_robin", Schedulers.Specs.round_robin, Schedulers.Native.round_robin);
      ( "redundant_if_no_q",
        Schedulers.Specs.redundant_if_no_q,
        Schedulers.Native.redundant_if_no_q );
    ]
  in
  List.concat_map
    (fun (name, src, native) ->
      let program = Progmp_lang.Typecheck.compile_source src in
      List.map
        (fun (spec_name, spec) ->
          tc (Fmt.str "native %s / %s" name spec_name) (fun () ->
              let reference =
                observe (fun env -> Interpreter.run program env) program spec
              in
              let o = observe native program spec in
              Alcotest.check obs_testable "native agrees" reference o))
        specs)
    pairs

(* Random programs x random environments. *)
let random_diff =
  let gen =
    QCheck2.Gen.pair Gen.gen_program
      (QCheck2.Gen.small_list Gen.gen_env_spec)
  in
  QCheck2.Test.make ~name:"random programs agree across backends" ~count:500
    gen (fun (ast, env_specs) ->
      let program =
        try Progmp_lang.Typecheck.check ast
        with Progmp_lang.Typecheck.Error (m, _) ->
          QCheck2.Test.fail_reportf
            "generator produced ill-typed program: %s@\n%s" m
            (Progmp_lang.Pretty.program_to_string ast)
      in
      let specs = default_env_spec :: env_specs in
      List.for_all
        (fun spec ->
          let engines = interpreter_first (backends program) in
          match List.map (fun (_, e) -> observe e program spec) engines with
          | reference :: others -> List.for_all (( = ) reference) others
          | [] -> true)
        specs)

(* Whole-simulation differential under fault injection: the same
   scheduler driven by the interpreter, the AOT engine and the bytecode
   VM, over identical network dynamics (flapping outage, loss episode,
   bandwidth change, subflow fail/reestablish), must make identical
   scheduling decisions — observed as identical delivery order, subflow
   counters and meta-socket statistics. *)

type sim_fingerprint = {
  f_order : int list;
  f_subflows : (int * int * int * int * int) list;
      (** per subflow: segs_sent, segs_retx, bytes_sent, bytes_acked,
          snd_nxt *)
  f_meta : int * int * int;  (** pushes, drops, sched_executions *)
  f_delivered : int;
  f_complete : bool;
}

let pp_sim_fingerprint ppf f =
  let pushes, drops, execs = f.f_meta in
  Fmt.pf ppf
    "delivered=%d complete=%b meta=(%d,%d,%d) subflows=[%a] order_len=%d"
    f.f_delivered f.f_complete pushes drops execs
    Fmt.(
      list ~sep:(any ";") (fun ppf (a, b, c, d, e) ->
          pf ppf "(%d,%d,%d,%d,%d)" a b c d e))
    f.f_subflows (List.length f.f_order)

let sim_fp_testable = Alcotest.testable pp_sim_fingerprint ( = )

let sim_fault_script =
  let open Mptcp_sim in
  Faults.flap ~start:0.3 ~period:1.0 ~down_for:0.3 ~until:3.0 "sbf2"
  @ [
      Faults.step ~at:0.4 "sbf1" (Faults.Set_bandwidth 800_000.0);
      Faults.step ~at:0.5 "sbf1" (Faults.Set_loss 0.02);
      Faults.step ~at:1.2 "sbf1" Faults.Subflow_fail;
      Faults.step ~at:2.2 "sbf1" (Faults.Set_loss 0.0);
      Faults.step ~at:2.5 "sbf1" Faults.Subflow_reestablish;
    ]

let sim_run sched_src ~name ~engine =
  let open Mptcp_sim in
  let sched = Scheduler.of_source ~name:(Fmt.str "simdiff-%s" name) sched_src in
  Scheduler.set_engine sched engine;
  let paths = Apps.Scenario.mininet_two_subflows ~rtt_ratio:2.0 () in
  let conn = Connection.create ~seed:11 ~paths () in
  (Connection.sock conn).Api.scheduler <- sched;
  Faults.apply conn sim_fault_script;
  let order = ref [] in
  conn.Connection.meta.Meta_socket.on_deliver <-
    (fun ~seq ~size:_ ~time:_ -> order := seq :: !order);
  let checker = Invariants.attach conn in
  Connection.write_at conn ~time:0.1 200_000;
  Connection.run ~until:300.0 conn;
  Alcotest.(check int)
    (Fmt.str "invariants clean (%s): %s" name
       (Option.value ~default:"" (Invariants.report checker)))
    0 (Invariants.total checker);
  let meta = conn.Connection.meta in
  {
    f_order = List.rev !order;
    f_subflows =
      List.map
        (fun m ->
          let s = m.Path_manager.subflow in
          ( s.Tcp_subflow.segs_sent,
            s.Tcp_subflow.segs_retx,
            s.Tcp_subflow.bytes_sent,
            s.Tcp_subflow.bytes_acked,
            s.Tcp_subflow.snd_nxt ))
        conn.Connection.paths;
    f_meta =
      ( meta.Meta_socket.pushes,
        meta.Meta_socket.drops,
        meta.Meta_socket.sched_executions );
    f_delivered = Connection.delivered_bytes conn;
    f_complete = Meta_socket.all_delivered meta;
  }

let sim_fault_cases =
  List.map
    (fun sched_name ->
      let src = List.assoc sched_name Schedulers.Specs.all in
      tc
        (Fmt.str "%s under faults: all engines agree" sched_name)
        (fun () ->
          let reference = sim_run src ~name:sched_name ~engine:"interpreter" in
          Alcotest.(check bool)
            (Fmt.str "reference run delivered everything: %a"
               pp_sim_fingerprint reference)
            true reference.f_complete;
          List.iter
            (fun engine ->
              if not (String.equal engine "interpreter") then
                let o = sim_run src ~name:sched_name ~engine in
                Alcotest.check sim_fp_testable
                  (engine ^ " matches the interpreter") reference o)
            (Engine.names ())))
    [ "default"; "round_robin"; "redundant"; "redundant_if_no_q"; "target_rtt" ]

let suite =
  [
    ("differential-zoo", zoo_cases);
    ("differential-native", native_cases);
    ( "differential-random",
      [ QCheck_alcotest.to_alcotest random_diff ] );
    ("differential-sim-faults", sim_fault_cases);
  ]
