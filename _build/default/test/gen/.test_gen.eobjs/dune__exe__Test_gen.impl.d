test/gen/test_gen.ml: Action Alcotest Array Env Gen_compensating Gen_minrtt Gen_redundant Gen_round_robin Interpreter List Packet Pqueue Progmp_lang Progmp_runtime Scheduler Schedulers Subflow_view
