test/gen/gen_compensating.ml: Array Env Fun List Packet Pqueue Progmp_lang Progmp_runtime Subflow_view
