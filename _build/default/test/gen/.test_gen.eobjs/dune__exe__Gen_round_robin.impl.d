test/gen/gen_round_robin.ml: Array Env Fun List Pqueue Progmp_lang Progmp_runtime Subflow_view
