(** Differential test of the source-generating AOT backend: the modules
    [Gen_*] in this directory are OCaml engines generated at build time
    (see the dune rules) from ProgMP specifications; each must behave
    exactly like the interpreter on the same environments. *)

open Progmp_runtime

type env_spec = {
  q_seqs : int list;
  qu_seqs : (int * int list) list;
  views : Subflow_view.t list;
  regs : (int * int) list;
}

let build spec =
  let env = Env.create () in
  let mk seq = Packet.create ~seq ~size:1448 ~now:0.0 () in
  List.iter (fun seq -> Pqueue.push_back env.Env.q (mk seq)) spec.q_seqs;
  List.iter
    (fun (seq, sent_on) ->
      let p = mk seq in
      List.iter (fun sbf_id -> Packet.mark_sent p ~sbf_id) sent_on;
      Pqueue.push_back env.Env.qu p)
    spec.qu_seqs;
  List.iter (fun (r, v) -> Env.set_register env r v) spec.regs;
  (env, Array.of_list spec.views)

let v ?(backup = false) ?(cwnd = 10) ?(inflight = 0) id rtt =
  {
    Subflow_view.default with
    Subflow_view.id;
    rtt_us = rtt;
    cwnd;
    skbs_in_flight = inflight;
    is_backup = backup;
  }

let specs =
  [
    { q_seqs = [ 0; 1; 2 ]; qu_seqs = []; views = [ v 0 40_000; v 1 10_000 ]; regs = [] };
    { q_seqs = []; qu_seqs = [ (7, [ 0 ]) ]; views = [ v 0 40_000; v 1 10_000 ]; regs = [ (1, 1) ] };
    { q_seqs = [ 0 ]; qu_seqs = [ (5, [ 1 ]) ];
      views = [ v ~cwnd:2 ~inflight:2 0 10_000; v 1 20_000; v ~backup:true 2 5_000 ];
      regs = [ (2, 1) ] };
    { q_seqs = []; qu_seqs = []; views = []; regs = [] };
  ]

let norm actions =
  List.map
    (function
      | Action.Push { sbf_id; pkt } -> `Push (sbf_id, pkt.Packet.seq)
      | Action.Drop pkt -> `Drop pkt.Packet.seq)
    actions

let observe engine spec =
  let env, views = build spec in
  Env.begin_execution env ~subflows:views;
  engine env;
  let actions = norm (Env.finish_execution env) in
  let seqs q = List.map (fun p -> p.Packet.seq) (Pqueue.to_list q) in
  (actions, seqs env.Env.q, seqs env.Env.qu, Array.to_list env.Env.registers)

let check_same name src engine =
  let program = Progmp_lang.Typecheck.compile_source src in
  List.iteri
    (fun i spec ->
      let reference = observe (Interpreter.run program) spec in
      let got = observe engine spec in
      if reference <> got then
        Alcotest.failf "%s: generated engine diverges on environment %d" name i)
    specs

let () =
  Alcotest.run "generated-engines"
    [
      ( "source-gen",
        [
          Alcotest.test_case "minrtt" `Quick (fun () ->
              check_same "minrtt" Schedulers.Specs.minrtt_minimal
                Gen_minrtt.engine);
          Alcotest.test_case "round robin (3 executions)" `Quick (fun () ->
              check_same "round_robin" Schedulers.Specs.round_robin
                Gen_round_robin.engine);
          Alcotest.test_case "redundant_if_no_q" `Quick (fun () ->
              check_same "redundant_if_no_q" Schedulers.Specs.redundant_if_no_q
                Gen_redundant.engine);
          Alcotest.test_case "compensating" `Quick (fun () ->
              check_same "compensating" Schedulers.Specs.compensating
                Gen_compensating.engine);
          Alcotest.test_case "generated engine installs as a backend" `Quick
            (fun () ->
              let sched =
                Scheduler.of_source ~name:"gen" Schedulers.Specs.minrtt_minimal
              in
              Scheduler.install_custom sched ~name:"generated-ocaml"
                Gen_minrtt.engine;
              let env, views = build (List.hd specs) in
              let actions = Scheduler.execute sched env ~subflows:views in
              Alcotest.(check int) "one push" 1 (List.length actions));
        ] );
    ]
