test/test_apps.ml: Alcotest Api Apps Connection Helpers Link List Mptcp_sim Path_manager Progmp_runtime Rng Schedulers Stats
