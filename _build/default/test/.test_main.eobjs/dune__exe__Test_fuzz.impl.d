test/test_fuzz.ml: Array Char Helpers Lexer Optimize Parser Progmp_compiler Progmp_lang Progmp_runtime QCheck2 QCheck_alcotest Schedulers String Tast Typecheck
