test/test_pretty.ml: Alcotest Ast Fmt Helpers List Loc Parser Pretty Progmp_lang QCheck2 QCheck_alcotest Schedulers
