test/test_receiver.ml: Alcotest Eventq Fun Helpers Link List Meta_socket Mptcp_sim Packet Progmp_runtime Rng Tcp_subflow
