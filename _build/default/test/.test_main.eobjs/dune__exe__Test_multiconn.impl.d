test/test_multiconn.ml: Alcotest Api Apps Connection Eventq Fmt Helpers Link List Meta_socket Mptcp_sim Path_manager Progmp_runtime Rng Schedulers
