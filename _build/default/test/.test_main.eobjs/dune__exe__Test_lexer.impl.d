test/test_lexer.ml: Alcotest Fmt Helpers Lexer List Loc Progmp_lang Token
