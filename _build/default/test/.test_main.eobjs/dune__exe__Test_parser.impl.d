test/test_parser.ml: Alcotest Ast Fmt Helpers List Parser Progmp_lang Schedulers String
