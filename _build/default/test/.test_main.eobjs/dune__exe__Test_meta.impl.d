test/test_meta.ml: Action Alcotest Api Apps Connection Env Fun Helpers List Meta_socket Mptcp_sim Packet Path_manager Pqueue Progmp_runtime QCheck2 QCheck_alcotest Schedulers Tcp_subflow
