test/test_typecheck.ml: Alcotest Array Helpers List Loc Progmp_lang Schedulers Tast Ty Typecheck
