test/test_compiler.ml: Alcotest Array Codegen Compile Disasm Fmt Gen Helpers Isa List Progmp_compiler Progmp_lang Progmp_runtime QCheck2 QCheck_alcotest Regalloc Schedulers String Vcode Verifier Vm
