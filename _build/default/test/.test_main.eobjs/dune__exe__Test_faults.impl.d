test/test_faults.ml: Alcotest Apps Connection Eventq Faults Float Fmt Fun Helpers Invariants Link List Meta_socket Mptcp_sim Option Path_manager Progmp_runtime Rng Schedulers String Tcp_subflow
