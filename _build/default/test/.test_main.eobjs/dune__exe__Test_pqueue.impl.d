test/test_pqueue.ml: Alcotest Fun Helpers List Option Packet Pqueue Progmp_runtime QCheck2 QCheck_alcotest
