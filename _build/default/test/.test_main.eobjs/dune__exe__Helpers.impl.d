test/helpers.ml: Action Alcotest Array Env Fmt List Packet Pqueue Progmp_lang Progmp_runtime Scheduler Subflow_view
