test/test_sim_core.ml: Alcotest Eventq Fun Helpers Link List Mptcp_sim QCheck2 QCheck_alcotest Rng
