test/test_schedulers.ml: Alcotest Env Helpers List Packet Pqueue Progmp_runtime Scheduler Schedulers Subflow_view
