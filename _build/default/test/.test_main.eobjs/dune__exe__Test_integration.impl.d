test/test_integration.ml: Alcotest Api Apps Connection Fmt Hashtbl Helpers Link List Meta_socket Mptcp_sim Path_manager Progmp_compiler Progmp_runtime Scheduler Schedulers Stats Tcp_subflow
