test/test_sim_invariants.ml: Api Apps Connection Env Fmt Fun Link List Meta_socket Mptcp_sim Path_manager Pqueue Progmp_runtime QCheck2 QCheck_alcotest Schedulers Tcp_subflow
