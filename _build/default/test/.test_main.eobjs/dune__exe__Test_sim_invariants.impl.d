test/test_sim_invariants.ml: Api Apps Connection Env Faults Fmt Fun Invariants Link List Meta_socket Mptcp_sim Option Path_manager Pqueue Progmp_runtime QCheck2 QCheck_alcotest Schedulers Tcp_subflow
