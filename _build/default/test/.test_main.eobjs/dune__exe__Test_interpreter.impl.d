test/test_interpreter.ml: Alcotest Helpers List Progmp_runtime
