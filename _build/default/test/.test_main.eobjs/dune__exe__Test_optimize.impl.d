test/test_optimize.ml: Alcotest Array Gen Helpers List Optimize Progmp_lang Progmp_runtime QCheck2 QCheck_alcotest Schedulers Tast Typecheck
