test/gen.ml: Ast Fmt Fun Helpers List Option Progmp_lang Progmp_runtime QCheck2 Subflow_view Ty
