test/test_tcp.ml: Alcotest Congestion Eventq Fmt Fun Helpers Link List Mptcp_sim Packet Progmp_runtime Queue Rng Subflow_view Tcp_subflow
