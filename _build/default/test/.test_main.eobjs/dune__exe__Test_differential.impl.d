test/test_differential.ml: Alcotest Aot Array Env Fmt Fun Gen Helpers Interpreter List Progmp_compiler Progmp_lang Progmp_runtime QCheck2 QCheck_alcotest Schedulers Subflow_view
