(** Interpreter semantics tests: declarative selection, queue views with
    late materialization, graceful NULL handling, effect ordering, the
    no-packet-loss guarantee, and register persistence. *)

open Helpers

let exec ?(spec = default_env_spec) src = run_once (load_anon src) spec

let check_actions name ?spec src expected =
  tc name (fun () ->
      let actions, _, _ = exec ?spec src in
      Alcotest.(check (list norm_testable)) name expected actions)

let suite =
  [
    ( "interpreter",
      [
        check_actions "min rtt picks the faster subflow"
          "SUBFLOWS.MIN(s => s.RTT).PUSH(Q.POP());"
          [ N_push (1, 0) ];
        check_actions "max rtt picks the slower subflow"
          "SUBFLOWS.MAX(s => s.RTT).PUSH(Q.POP());"
          [ N_push (0, 0) ];
        check_actions "min ties resolve to the first subflow"
          ~spec:
            {
              default_env_spec with
              views =
                [
                  { Progmp_runtime.Subflow_view.default with id = 3; rtt_us = 7 };
                  { Progmp_runtime.Subflow_view.default with id = 4; rtt_us = 7 };
                ];
            }
          "SUBFLOWS.MIN(s => s.RTT).PUSH(Q.POP());"
          [ N_push (3, 0) ];
        check_actions "filter narrows the set"
          "SUBFLOWS.FILTER(s => s.RTT < 20000).MIN(s2 => s2.RTT).PUSH(Q.POP());"
          [ N_push (1, 0) ];
        check_actions "empty selection pushes nothing (graceful NULL)"
          "SUBFLOWS.FILTER(s => s.RTT > 1000000).MIN(s2 => s2.RTT).PUSH(Q.POP());"
          [];
        check_actions "foreach visits subflows in order"
          "FOREACH (VAR s IN SUBFLOWS) { s.PUSH(Q.TOP); }"
          [ N_push (0, 0); N_push (1, 0) ];
        check_actions "pop removes: two pops give two packets"
          "SUBFLOWS.GET(0).PUSH(Q.POP()); SUBFLOWS.GET(0).PUSH(Q.POP());"
          [ N_push (0, 0); N_push (0, 1) ];
        check_actions "top does not remove"
          "SUBFLOWS.GET(0).PUSH(Q.TOP); SUBFLOWS.GET(1).PUSH(Q.TOP);"
          [ N_push (0, 0); N_push (1, 0) ];
        check_actions "filtered pop removes mid-queue"
          "SUBFLOWS.GET(0).PUSH(Q.FILTER(p => p.SEQ == 1).POP());"
          [ N_push (0, 1) ];
        check_actions "get out of range is NULL"
          "VAR s = SUBFLOWS.GET(9);\nIF (s != NULL) { s.PUSH(Q.POP()); }"
          [];
        check_actions "drop emits a drop action" "DROP(Q.POP());"
          [ N_drop 0 ];
        check_actions "return stops execution"
          "SUBFLOWS.GET(0).PUSH(Q.POP()); RETURN; SUBFLOWS.GET(0).PUSH(Q.POP());"
          [ N_push (0, 0) ];
        check_actions "if/else branches"
          "IF (Q.COUNT > 2) { SUBFLOWS.GET(0).PUSH(Q.POP()); } ELSE { SUBFLOWS.GET(1).PUSH(Q.POP()); }"
          [ N_push (0, 0) ];
        check_actions "queue min selects by key"
          "SUBFLOWS.GET(0).PUSH(Q.MIN(p => 0 - p.SEQ));"
          [ N_push (0, 2) ];
        check_actions "properties of NULL read as zero"
          "VAR ghost = SUBFLOWS.FILTER(s => FALSE).MIN(m => m.RTT);\n\
           IF (ghost.RTT == 0 AND !ghost.LOSSY) { SUBFLOWS.GET(0).PUSH(Q.POP()); }"
          [ N_push (0, 0) ];
        check_actions "division by zero yields zero"
          "IF (5 / 0 == 0 AND 5 % 0 == 0) { SUBFLOWS.GET(0).PUSH(Q.POP()); }"
          [ N_push (0, 0) ];
        check_actions "and short-circuits before queue access"
          "IF (FALSE AND Q.TOP.SIZE > 0) { SUBFLOWS.GET(0).PUSH(Q.POP()); }"
          [];
        tc "final queue state after pop" (fun () ->
            let _, (q, _, _), _ =
              exec "SUBFLOWS.GET(0).PUSH(Q.POP());"
            in
            Alcotest.(check (list int)) "q" [ 1; 2 ] q);
        tc "popped but unpushed packet returns to Q front" (fun () ->
            let _, (q, _, _), _ = exec "VAR x = Q.POP();" in
            Alcotest.(check (list int)) "q restored" [ 0; 1; 2 ] q);
        tc "two orphan pops restore original order" (fun () ->
            let _, (q, _, _), _ = exec "VAR x = Q.POP(); VAR y = Q.POP();" in
            Alcotest.(check (list int)) "q restored" [ 0; 1; 2 ] q);
        tc "dropped packet does not return" (fun () ->
            let _, (q, _, _), _ = exec "DROP(Q.POP());" in
            Alcotest.(check (list int)) "q" [ 1; 2 ] q);
        tc "pop from RQ returns to RQ when unhandled" (fun () ->
            let spec =
              {
                default_env_spec with
                qu_seqs = [ (5, [ 0 ]) ];
                rq_seqs = [ 5 ];
              }
            in
            let _, (_, _, rq), _ =
              run_once (load_anon "VAR x = RQ.POP();") spec
            in
            Alcotest.(check (list int)) "rq restored" [ 5 ] rq);
        tc "registers persist across executions" (fun () ->
            let sched = load_anon "SET(R1, R1 + 1);" in
            let env, views = build default_env_spec in
            ignore (Progmp_runtime.Scheduler.execute sched env ~subflows:views);
            ignore (Progmp_runtime.Scheduler.execute sched env ~subflows:views);
            ignore (Progmp_runtime.Scheduler.execute sched env ~subflows:views);
            Alcotest.(check int) "R1" 3 (Progmp_runtime.Env.get_register env 0));
        tc "register read default is zero" (fun () ->
            let actions, _, _ =
              exec "IF (R5 == 0) { SUBFLOWS.GET(0).PUSH(Q.POP()); }"
            in
            Alcotest.(check int) "one push" 1 (List.length actions));
        check_actions "sent_on is respected"
          ~spec:
            {
              default_env_spec with
              q_seqs = [];
              qu_seqs = [ (7, [ 0 ]); (8, [ 0; 1 ]) ];
            }
          "FOREACH (VAR s IN SUBFLOWS) {\n\
           VAR skb = QU.FILTER(u => !u.SENT_ON(s)).TOP;\n\
           IF (skb != NULL) { s.PUSH(skb); }\n\
           }"
          [ N_push (1, 7) ];
        check_actions "queue chained filters compose"
          ~spec:{ default_env_spec with q_seqs = [ 0; 1; 2; 3; 4 ] }
          "SUBFLOWS.GET(0).PUSH(Q.FILTER(a => a.SEQ > 1).FILTER(b => b.SEQ < 4).POP());"
          [ N_push (0, 2) ];
        tc "count and empty on views" (fun () ->
            let actions, _, _ =
              exec
                "IF (Q.FILTER(p => p.SEQ > 0).COUNT == 2 AND \
                 !Q.EMPTY AND RQ.EMPTY) { SUBFLOWS.GET(0).PUSH(Q.POP()); }"
            in
            Alcotest.(check int) "one push" 1 (List.length actions));
        tc "subflow sum" (fun () ->
            let actions, _, _ =
              exec
                "IF (SUBFLOWS.SUM(s => s.RTT) == 50000) { \
                 SUBFLOWS.GET(0).PUSH(Q.POP()); }"
            in
            Alcotest.(check int) "one push" 1 (List.length actions));
      ] );
  ]
