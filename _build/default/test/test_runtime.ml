(** Runtime tests: environment bookkeeping (the no-packet-loss guarantee
    across executions), scheduler registry and compressed execution, and
    the extended application API. *)

open Progmp_runtime
open Helpers

(* substring containment *)
module Astring_like = struct
  let contains haystack needle =
    let nh = String.length haystack and nn = String.length needle in
    let rec go i = i + nn <= nh && (String.sub haystack i nn = needle || go (i + 1)) in
    nn = 0 || go 0
end

(* QCheck: whatever a random program does, packets are conserved — every
   packet initially in Q is afterwards in Q, or pushed, or dropped; never
   silently gone. *)
let no_loss =
  QCheck2.Test.make ~name:"packets are never lost by an execution" ~count:500
    (QCheck2.Gen.pair Gen.gen_program Gen.gen_env_spec)
    (fun (ast, spec) ->
      let program = Progmp_lang.Typecheck.check ast in
      let env, views = build spec in
      let before = seqs_of env.Env.q in
      Env.begin_execution env ~subflows:views;
      Interpreter.run program env;
      let actions = Env.finish_execution env in
      let after = seqs_of env.Env.q in
      let handled seq =
        List.exists
          (function
            | Action.Push { pkt; _ } -> pkt.Packet.seq = seq
            | Action.Drop pkt -> pkt.Packet.seq = seq)
          actions
      in
      List.for_all (fun seq -> List.mem seq after || handled seq) before)

let suite =
  [
    ( "runtime",
      [
        tc "packet sent_on mask tracks subflows" (fun () ->
            let p = Packet.create ~seq:0 ~size:1 ~now:0.0 () in
            Packet.mark_sent p ~sbf_id:3;
            Packet.mark_sent p ~sbf_id:0;
            Alcotest.(check bool) "on 3" true (Packet.sent_on p ~sbf_id:3);
            Alcotest.(check bool) "on 0" true (Packet.sent_on p ~sbf_id:0);
            Alcotest.(check bool) "not on 1" false (Packet.sent_on p ~sbf_id:1);
            Alcotest.(check int) "count" 2 p.Packet.sent_count);
        tc "packet ids are unique" (fun () ->
            let a = Packet.create ~seq:0 ~size:1 ~now:0.0 () in
            let b = Packet.create ~seq:0 ~size:1 ~now:0.0 () in
            Alcotest.(check bool) "distinct" true (a.Packet.id <> b.Packet.id));
        tc "user props clamp out-of-range" (fun () ->
            let p = Packet.create ~seq:0 ~size:1 ~now:0.0 () in
            Packet.set_user_prop p 0 7;
            Packet.set_user_prop p 99 5;
            Alcotest.(check int) "prop1" 7 (Packet.user_prop p 0);
            Alcotest.(check int) "oob reads 0" 0 (Packet.user_prop p 99));
        tc "registers out of range read as zero" (fun () ->
            let env = Env.create () in
            Alcotest.(check int) "r99" 0 (Env.get_register env 99);
            Env.set_register env 99 5 (* ignored *);
            Alcotest.(check int) "still 0" 0 (Env.get_register env 99));
        tc "has_window_for respects receive window" (fun () ->
            let v =
              {
                Subflow_view.default with
                Subflow_view.receive_window_bytes = 3000;
                skbs_in_flight = 1;
                mss = 1448;
              }
            in
            let small = Packet.create ~seq:0 ~size:1000 ~now:0.0 () in
            let big = Packet.create ~seq:1 ~size:2000 ~now:0.0 () in
            Alcotest.(check bool) "small fits" true (Subflow_view.has_window_for v small);
            Alcotest.(check bool) "big blocked" false (Subflow_view.has_window_for v big));
        tc "scheduler registry load and find" (fun () ->
            let _ = Scheduler.load ~name:"reg-test" Schedulers.Specs.minrtt_minimal in
            (match Scheduler.find "reg-test" with
            | Some s -> Alcotest.(check string) "name" "reg-test" s.Scheduler.name
            | None -> Alcotest.fail "not found");
            Alcotest.(check bool) "unknown absent" true
              (Scheduler.find "no-such-scheduler" = None));
        tc "load error on bad spec" (fun () ->
            match Scheduler.load ~name:"broken" "VAR x = ;" with
            | _ -> Alcotest.fail "expected Load_error"
            | exception Scheduler.Load_error _ -> ());
        tc "compressed execution drains until cwnd closes" (fun () ->
            (* one subflow with cwnd 3: compressed execution must push
               exactly 3 of the 10 queued packets *)
            let sched = load_anon Schedulers.Specs.default in
            let env = Env.create () in
            for i = 0 to 9 do
              Pqueue.push_back env.Env.q (Packet.create ~seq:i ~size:1448 ~now:0.0 ())
            done;
            let queued = ref 0 in
            let snapshot () =
              [| { Subflow_view.default with Subflow_view.cwnd = 3; queued = !queued } |]
            in
            let actions =
              Scheduler.execute_compressed sched env ~snapshot ~apply:(function
                | Action.Push _ -> incr queued
                | Action.Drop _ -> ())
            in
            Alcotest.(check int) "three pushes" 3 (List.length actions);
            Alcotest.(check int) "seven remain" 7 (Pqueue.length env.Env.q));
        tc "compressed execution respects max_rounds" (fun () ->
            let sched = load_anon "SET(R1, R1 + 1); SUBFLOWS.GET(0).PUSH(Q.TOP);" in
            let env = Env.create () in
            Pqueue.push_back env.Env.q (Packet.create ~seq:0 ~size:1 ~now:0.0 ());
            let snapshot () = [| Subflow_view.default |] in
            let actions =
              Scheduler.execute_compressed ~max_rounds:5 sched env ~snapshot
                ~apply:(fun _ -> ())
            in
            Alcotest.(check int) "bounded" 5 (List.length actions);
            Alcotest.(check int) "five rounds ran" 5 (Env.get_register env 0));
        tc "api: set/get register" (fun () ->
            let sock = Api.create () in
            Api.set_register sock 0 1234;
            Alcotest.(check int) "r1" 1234 (Api.get_register sock 0);
            match Api.set_register sock 9 1 with
            | () -> Alcotest.fail "expected Api_error"
            | exception Api.Api_error _ -> ());
        tc "api: default scheduler installed" (fun () ->
            let sock = Api.create () in
            Alcotest.(check string) "default" "default" (Api.scheduler_name sock));
        tc "api: load and select scheduler" (fun () ->
            let sock = Api.create () in
            Api.load_scheduler Schedulers.Specs.round_robin ~name:"rr-api";
            Api.set_scheduler sock "rr-api";
            Alcotest.(check string) "selected" "rr-api" (Api.scheduler_name sock));
        tc "api: selecting unknown scheduler fails" (fun () ->
            let sock = Api.create () in
            match Api.set_scheduler sock "does-not-exist" with
            | () -> Alcotest.fail "expected Api_error"
            | exception Api.Api_error _ -> ());
        tc "api: loading invalid spec fails" (fun () ->
            match Api.load_scheduler "IF (" ~name:"broken-api" with
            | () -> Alcotest.fail "expected Api_error"
            | exception Api.Api_error _ -> ());
        tc "api: packet properties" (fun () ->
            let sock = Api.create () in
            Api.set_packet_property sock ~prop:0 3;
            Alcotest.(check int) "prop set" 3 (Api.current_packet_props sock).(0);
            match Api.set_packet_property sock ~prop:9 1 with
            | () -> Alcotest.fail "expected Api_error"
            | exception Api.Api_error _ -> ());
        tc "per-connection registers are isolated" (fun () ->
            let s1 = Api.create () and s2 = Api.create () in
            Api.set_register s1 0 1;
            Api.set_register s2 0 2;
            Alcotest.(check int) "s1" 1 (Api.get_register s1 0);
            Alcotest.(check int) "s2" 2 (Api.get_register s2 0));
        tc "aot engine can be selected from the registry" (fun () ->
            let sched = load_anon Schedulers.Specs.minrtt_minimal in
            Scheduler.set_engine sched "aot";
            Alcotest.(check string) "label" "aot" (Scheduler.engine_label sched));
        tc "selecting an unknown engine raises" (fun () ->
            let sched = load_anon Schedulers.Specs.minrtt_minimal in
            match Scheduler.set_engine sched "no-such-engine" with
            | () -> Alcotest.fail "expected Engine.Unknown"
            | exception Engine.Unknown msg ->
                Alcotest.(check bool) "names the engine" true
                  (Astring_like.contains msg "no-such-engine");
                Alcotest.(check bool) "lists alternatives" true
                  (Astring_like.contains msg "interpreter"));
        tc "engine names are sorted and include the core engines" (fun () ->
            let names = Engine.names () in
            Alcotest.(check (list string))
              "sorted" (List.sort compare names) names;
            List.iter
              (fun n ->
                Alcotest.(check bool) (n ^ " registered") true
                  (List.mem n names))
              [ "interpreter"; "aot" ]);
        tc "loaded_names is sorted" (fun () ->
            ignore (Scheduler.load ~name:"zz-last" Schedulers.Specs.minrtt_minimal);
            ignore (Scheduler.load ~name:"aa-first" Schedulers.Specs.minrtt_minimal);
            let names = Scheduler.loaded_names () in
            Alcotest.(check (list string))
              "sorted" (List.sort compare names) names);
        tc "duplicate load hits the compilation cache" (fun () ->
            let hits0, _ = Scheduler.compilation_cache_stats () in
            let a = Scheduler.load ~name:"cache-a" Schedulers.Specs.round_robin in
            let b = Scheduler.load ~name:"cache-b" Schedulers.Specs.round_robin in
            let hits1, _ = Scheduler.compilation_cache_stats () in
            Alcotest.(check bool) "cache hit recorded" true (hits1 > hits0);
            Alcotest.(check bool) "typed program shared" true
              (a.Scheduler.program == b.Scheduler.program);
            Alcotest.(check string) "same digest" a.Scheduler.digest
              b.Scheduler.digest);
        tc "finish_execution restores unhandled pops, newest in front" (fun () ->
            (* many pops, none handled: all must return to the front of Q
               in their original order (regression guard for the former
               O(actions x pops) scan) *)
            let env = Env.create () in
            let n = 500 in
            for i = 0 to n - 1 do
              Pqueue.push_back env.Env.q
                (Packet.create ~seq:i ~size:1 ~now:0.0 ())
            done;
            Env.begin_execution env ~subflows:[| Subflow_view.default |];
            for _ = 1 to n do
              match Pqueue.pop_front env.Env.q with
              | Some pkt -> Env.record_pop env env.Env.q pkt
              | None -> Alcotest.fail "queue exhausted early"
            done;
            let actions = Env.finish_execution env in
            Alcotest.(check int) "no actions" 0 (List.length actions);
            Alcotest.(check (list int))
              "all packets restored in order"
              (List.init n Fun.id)
              (seqs_of env.Env.q));
        tc "finish_execution keeps handled pops out of the queue" (fun () ->
            let env = Env.create () in
            for i = 0 to 3 do
              Pqueue.push_back env.Env.q
                (Packet.create ~seq:i ~size:1 ~now:0.0 ())
            done;
            Env.begin_execution env ~subflows:[| Subflow_view.default |];
            (* pop two; push the first, leave the second orphaned *)
            (match Pqueue.pop_front env.Env.q with
            | Some pkt ->
                Env.record_pop env env.Env.q pkt;
                Env.emit_push env ~sbf_id:0 pkt
            | None -> Alcotest.fail "empty");
            (match Pqueue.pop_front env.Env.q with
            | Some pkt -> Env.record_pop env env.Env.q pkt
            | None -> Alcotest.fail "empty");
            let actions = Env.finish_execution env in
            Alcotest.(check int) "one push" 1 (List.length actions);
            Alcotest.(check (list int))
              "orphan restored, pushed one gone" [ 1; 2; 3 ]
              (seqs_of env.Env.q));
        QCheck_alcotest.to_alcotest no_loss;
      ] );
  ]

(* Profiler tests live here to reuse the runtime helpers. *)
let profiler_suite =
  [
    ( "profiler",
      [
        tc "counts executions and statements" (fun () ->
            let sched = load_anon Schedulers.Specs.round_robin in
            let profile = Profiler.attach sched in
            let env, views = build default_env_spec in
            for _ = 1 to 5 do
              ignore (Scheduler.execute sched env ~subflows:views)
            done;
            let executions, actions, _ = Profiler.stats profile in
            Alcotest.(check int) "executions" 5 executions;
            Alcotest.(check bool) "actions counted" true (actions >= 3);
            let report = Profiler.report profile in
            Alcotest.(check bool) "mentions IF" true
              (Astring_like.contains report "IF (...)");
            Alcotest.(check bool) "mentions executions" true
              (Astring_like.contains report "5 executions"));
        tc "branch hit counts reflect control flow" (fun () ->
            let sched =
              load_anon
                "IF (R1 == 1) { SET(R2, 1); } ELSE { SET(R3, 1); } SET(R4, 0);"
            in
            let profile = Profiler.attach sched in
            let env, views = build default_env_spec in
            Env.set_register env 0 1;
            ignore (Scheduler.execute sched env ~subflows:views);
            Env.set_register env 0 0;
            ignore (Scheduler.execute sched env ~subflows:views);
            ignore (Scheduler.execute sched env ~subflows:views);
            (* ids: 0 = IF, 1 = SET(R2) (then), 2 = SET(R3) (else), 3 = SET(R4) *)
            Alcotest.(check int) "if entered 3x" 3 profile.Profiler.hits.(0);
            Alcotest.(check int) "then 1x" 1 profile.Profiler.hits.(1);
            Alcotest.(check int) "else 2x" 2 profile.Profiler.hits.(2);
            Alcotest.(check int) "tail 3x" 3 profile.Profiler.hits.(3));
        tc "profiled engine produces the same actions" (fun () ->
            let plain = load_anon Schedulers.Specs.default in
            let profiled = load_anon Schedulers.Specs.default in
            ignore (Profiler.attach profiled);
            let a1, q1, _ = run_once plain default_env_spec in
            let a2, q2, _ = run_once profiled default_env_spec in
            Alcotest.(check (list norm_testable)) "same actions" a1 a2;
            Alcotest.(check bool) "same queues" true (q1 = q2));
      ] );
  ]

(* A coarse performance guard: interpreting the default scheduler must
   stay within an order-of-magnitude envelope (micro-optimizations are
   benchmarked in bench/main.exe fig9; this only catches accidental
   quadratic blowups). *)
let perf_suite =
  [
    ( "perf-guard",
      [
        tc "default scheduler executes in < 100 us" (fun () ->
            let sched = load_anon Schedulers.Specs.default in
            let env, views = build default_env_spec in
            (* warm up *)
            for _ = 1 to 100 do
              ignore (Scheduler.execute sched env ~subflows:views)
            done;
            let n = 2_000 in
            let t0 = Unix.gettimeofday () in
            for _ = 1 to n do
              ignore (Scheduler.execute sched env ~subflows:views)
            done;
            let per = (Unix.gettimeofday () -. t0) /. float_of_int n in
            Alcotest.(check bool)
              (Fmt.str "%.1f us per execution" (per *. 1e6))
              true (per < 100e-6));
      ] );
  ]
