(** Meta-socket tests: end-to-end queue-model invariants under random
    loss ("a packet is never lost"; "acknowledged packets are removed
    from all queues"), in-order delivery, data-ack cleanup, action
    application corner cases, and the reinjection path. *)

open Mptcp_sim
open Progmp_runtime
open Helpers

let two_path_conn ?(seed = 1) ?(loss = 0.0) ?(scheduler = "default")
    ?(delivery_mode = Tcp_subflow.Immediate) () =
  ignore (Schedulers.Specs.load_all ());
  let paths =
    Apps.Scenario.mininet_two_subflows ~rtt_ratio:3.0 ~loss ()
  in
  let conn = Connection.create ~seed ~delivery_mode ~paths () in
  Api.set_scheduler (Connection.sock conn) scheduler;
  conn

let check_clean_completion conn ~written =
  let meta = conn.Connection.meta in
  Alcotest.(check bool) "all delivered" true (Meta_socket.all_delivered meta);
  Alcotest.(check int) "delivered bytes" written (Connection.delivered_bytes conn);
  (* acknowledged packets leave all queues *)
  let env = Meta_socket.env meta in
  Alcotest.(check int) "Q drained" 0 (Pqueue.length env.Env.q);
  Alcotest.(check int) "QU drained" 0 (Pqueue.length env.Env.qu);
  Alcotest.(check int) "RQ drained" 0 (Pqueue.length env.Env.rq);
  Alcotest.(check int) "no data dropped" 0 meta.Meta_socket.data_dropped

let in_order_delivery_prop =
  QCheck2.Test.make ~name:"delivery is exactly-once and in order under loss"
    ~count:25
    QCheck2.Gen.(pair (int_range 0 100) (int_range 0 8))
    (fun (seed, loss_pct) ->
      let loss = float_of_int loss_pct /. 100.0 in
      let conn = two_path_conn ~seed ~loss () in
      let order = ref [] in
      conn.Connection.meta.Meta_socket.on_deliver <-
        (fun ~seq ~size:_ ~time:_ -> order := seq :: !order);
      Connection.write_at conn ~time:0.1 200_000;
      Connection.run ~until:120.0 conn;
      let got = List.rev !order in
      got = List.init (List.length got) Fun.id
      && Meta_socket.all_delivered conn.Connection.meta)

let suite =
  [
    ( "meta-socket",
      [
        tc "bulk transfer completes cleanly" (fun () ->
            let conn = two_path_conn () in
            Connection.write_at conn ~time:0.1 500_000;
            Connection.run ~until:60.0 conn;
            check_clean_completion conn ~written:500_000);
        tc "bulk transfer with loss completes cleanly" (fun () ->
            let conn = two_path_conn ~loss:0.03 () in
            Connection.write_at conn ~time:0.1 500_000;
            Connection.run ~until:120.0 conn;
            check_clean_completion conn ~written:500_000);
        tc "two-layer receiver also completes" (fun () ->
            let conn =
              two_path_conn ~loss:0.03 ~delivery_mode:Tcp_subflow.Two_layer ()
            in
            Connection.write_at conn ~time:0.1 300_000;
            Connection.run ~until:120.0 conn;
            check_clean_completion conn ~written:300_000);
        tc "every zoo scheduler completes a lossy transfer" (fun () ->
            List.iter
              (fun (name, _) ->
                let conn = two_path_conn ~loss:0.02 ~scheduler:name () in
                (* give intent registers sensible values so the
                   preference-aware schedulers make progress *)
                Api.set_register (Connection.sock conn) 0 2_000_000;
                Connection.write_at conn ~time:0.1 150_000;
                Connection.run ~until:200.0 conn;
                if not (Meta_socket.all_delivered conn.Connection.meta) then
                  Alcotest.failf "%s did not deliver everything" name)
              Schedulers.Specs.all);
        tc "delivery times are monotone in seq" (fun () ->
            let conn = two_path_conn ~loss:0.02 () in
            Connection.write_at conn ~time:0.1 200_000;
            Connection.run ~until:60.0 conn;
            let meta = conn.Connection.meta in
            let last = ref 0.0 in
            for seq = 0 to meta.Meta_socket.next_seq - 1 do
              match Meta_socket.delivery_time_of meta seq with
              | Some t ->
                  Alcotest.(check bool) "monotone" true (t >= !last);
                  last := t
              | None -> Alcotest.failf "segment %d undelivered" seq
            done);
        tc "redundant scheduler sends duplicates, receiver dedups" (fun () ->
            let conn = two_path_conn ~scheduler:"redundant" () in
            Connection.write_at conn ~time:0.1 100_000;
            Connection.run ~until:60.0 conn;
            let meta = conn.Connection.meta in
            Alcotest.(check bool) "all delivered" true (Meta_socket.all_delivered meta);
            Alcotest.(check int) "delivered exactly once" meta.Meta_socket.next_seq
              meta.Meta_socket.delivered_segments;
            let wire =
              List.fold_left
                (fun a m -> a + m.Path_manager.subflow.Tcp_subflow.bytes_sent)
                0 conn.Connection.paths
            in
            (* full 2x is not reached: fast-path data-acks remove packets
               from QU before the slow subflow sends its copy, exactly as
               the paper describes (§5.1) *)
            Alcotest.(check bool) "wire bytes >1.25x goodput" true
              (wire > 125_000);
            Alcotest.(check bool) "more pushes than segments" true
              (meta.Meta_socket.pushes > meta.Meta_socket.next_seq));
        tc "push to vanished subflow returns packet to Q" (fun () ->
            let conn = two_path_conn () in
            let meta = conn.Connection.meta in
            let env = Meta_socket.env meta in
            let pkt = Packet.create ~seq:0 ~size:100 ~now:0.0 () in
            Meta_socket.apply_action meta
              (Action.Push { sbf_id = 99; pkt });
            Alcotest.(check int) "packet back in Q" 1 (Pqueue.length env.Env.q));
        tc "fct helper reports completion" (fun () ->
            let conn = two_path_conn () in
            Connection.write_at conn ~time:0.1 50_000;
            Connection.run ~until:30.0 conn;
            let meta = conn.Connection.meta in
            match Meta_socket.fct meta ~first:0 ~last:(meta.Meta_socket.next_seq - 1) with
            | Some t -> Alcotest.(check bool) "positive" true (t > 0.1)
            | None -> Alcotest.fail "fct unavailable");
        tc "fct is None when incomplete" (fun () ->
            let conn = two_path_conn () in
            Connection.write_at conn ~time:0.1 50_000;
            Connection.run ~until:0.15 conn;
            let meta = conn.Connection.meta in
            Alcotest.(check bool) "incomplete" true
              (Meta_socket.fct meta ~first:0 ~last:(meta.Meta_socket.next_seq - 1)
              = None));
        tc "losses populate the reinjection queue" (fun () ->
            (* kill one path mid-transfer so its in-flight packets land
               in RQ and are reinjected on the other *)
            let conn = two_path_conn () in
            Connection.write_at conn ~time:0.1 400_000;
            let m0 = List.nth conn.Connection.paths 0 in
            Connection.fail_path conn m0 ~at:0.15;
            Connection.run ~until:120.0 conn;
            Alcotest.(check bool) "all delivered despite path failure" true
              (Meta_socket.all_delivered conn.Connection.meta));
        tc "write segments data correctly" (fun () ->
            let conn = two_path_conn () in
            let seqs = ref [] in
            Connection.at conn ~time:0.1 (fun () ->
                seqs := Connection.write conn 10_000);
            Connection.run ~until:10.0 conn;
            Alcotest.(check int) "ceil(10000/1448) segments" 7
              (List.length !seqs);
            Alcotest.(check int) "delivered" 10_000
              (Connection.delivered_bytes conn));
        tc "packet properties propagate to packets" (fun () ->
            let conn = two_path_conn () in
            let env = Meta_socket.env conn.Connection.meta in
            Connection.at conn ~time:0.0 (fun () ->
                ignore (Connection.write ~props:[| 3; 0; 0; 0 |] conn 100));
            Connection.run ~until:0.001 conn;
            (* packet is either still in Q or already in QU *)
            let all = Pqueue.to_list env.Env.q @ Pqueue.to_list env.Env.qu in
            match all with
            | p :: _ -> Alcotest.(check int) "prop1" 3 (Packet.user_prop p 0)
            | [] -> Alcotest.fail "no packet found");
        QCheck_alcotest.to_alcotest in_order_delivery_prop;
      ] );
  ]
