(** Property tests for the augmented packet queue (mid-queue removal,
    front reinsertion, predicate removal) against a list model. *)

open Progmp_runtime
open Helpers

type op =
  | Push_back of int
  | Push_front of int
  | Pop_front
  | Remove_at of int
  | Remove_if_even

let gen_ops =
  let open QCheck2.Gen in
  small_list
    (oneof
       [
         map (fun s -> Push_back (abs s mod 1000)) small_int;
         map (fun s -> Push_front (abs s mod 1000)) small_int;
         return Pop_front;
         map (fun i -> Remove_at (abs i mod 12)) small_int;
         return Remove_if_even;
       ])

(* Execute ops against both the real queue and a list model; compare. *)
let model_matches ops =
  let q = Pqueue.create () in
  let model = ref [] in
  let mk seq = Packet.create ~seq ~size:100 ~now:0.0 () in
  List.for_all
    (fun op ->
      (match op with
      | Push_back s ->
          let p = mk s in
          Pqueue.push_back q p;
          model := !model @ [ s ]
      | Push_front s ->
          let p = mk s in
          Pqueue.push_front q p;
          model := s :: !model
      | Pop_front -> (
          let got = Option.map (fun p -> p.Packet.seq) (Pqueue.pop_front q) in
          match !model with
          | [] -> assert (got = None)
          | x :: rest ->
              assert (got = Some x);
              model := rest)
      | Remove_at i -> (
          let got = Option.map (fun p -> p.Packet.seq) (Pqueue.remove_at q i) in
          if i < List.length !model then begin
            assert (got = Some (List.nth !model i));
            model := List.filteri (fun j _ -> j <> i) !model
          end
          else assert (got = None))
      | Remove_if_even ->
          let removed =
            List.map (fun p -> p.Packet.seq)
              (Pqueue.remove_if q (fun p -> p.Packet.seq mod 2 = 0))
          in
          let expect_removed = List.filter (fun s -> s mod 2 = 0) !model in
          assert (removed = expect_removed);
          model := List.filter (fun s -> s mod 2 <> 0) !model);
      seqs_of q = !model && Pqueue.length q = List.length !model)
    ops

let qprop =
  QCheck2.Test.make ~name:"pqueue behaves like a list model" ~count:1000
    gen_ops model_matches

let suite =
  [
    ( "pqueue",
      [
        tc "empty queue basics" (fun () ->
            let q = Pqueue.create () in
            Alcotest.(check bool) "empty" true (Pqueue.is_empty q);
            Alcotest.(check int) "len" 0 (Pqueue.length q);
            Alcotest.(check bool) "pop none" true (Pqueue.pop_front q = None);
            Alcotest.(check bool) "nth none" true (Pqueue.nth q 0 = None));
        tc "fifo order" (fun () ->
            let q = Pqueue.create () in
            for i = 0 to 99 do
              Pqueue.push_back q (Packet.create ~seq:i ~size:1 ~now:0.0 ())
            done;
            Alcotest.(check (list int)) "order" (List.init 100 Fun.id) (seqs_of q));
        tc "growth across wrap-around" (fun () ->
            let q = Pqueue.create () in
            (* interleave pushes and pops to move the head offset, then
               force growth *)
            for i = 0 to 9 do
              Pqueue.push_back q (Packet.create ~seq:i ~size:1 ~now:0.0 ())
            done;
            for _ = 0 to 7 do
              ignore (Pqueue.pop_front q)
            done;
            for i = 10 to 59 do
              Pqueue.push_back q (Packet.create ~seq:i ~size:1 ~now:0.0 ())
            done;
            Alcotest.(check (list int)) "order preserved"
              (List.init 52 (fun i -> i + 8))
              (seqs_of q));
        tc "remove_packet by identity" (fun () ->
            let q = Pqueue.create () in
            let p1 = Packet.create ~seq:1 ~size:1 ~now:0.0 () in
            let p2 = Packet.create ~seq:2 ~size:1 ~now:0.0 () in
            Pqueue.push_back q p1;
            Pqueue.push_back q p2;
            Alcotest.(check bool) "removed" true (Pqueue.remove_packet q p1);
            Alcotest.(check bool) "gone" false (Pqueue.mem q p1);
            Alcotest.(check bool) "kept" true (Pqueue.mem q p2);
            Alcotest.(check bool) "second removal fails" false
              (Pqueue.remove_packet q p1));
        tc "clear" (fun () ->
            let q = Pqueue.create () in
            Pqueue.push_back q (Packet.create ~seq:0 ~size:1 ~now:0.0 ());
            Pqueue.clear q;
            Alcotest.(check int) "len" 0 (Pqueue.length q));
        QCheck_alcotest.to_alcotest qprop;
      ] );
  ]
