(** Pretty-printer tests: printing a parsed program and re-parsing it
    yields the same structure (round trip), checked on hand-written
    programs, the scheduler zoo, and randomly generated ASTs. *)

open Progmp_lang
open Helpers

(* Structural equality modulo locations. *)
let rec eq_expr (a : Ast.expr) (b : Ast.expr) =
  match (a.Ast.desc, b.Ast.desc) with
  | Ast.Int x, Ast.Int y -> x = y
  | Ast.Bool x, Ast.Bool y -> x = y
  | Ast.Null, Ast.Null -> true
  | Ast.Register x, Ast.Register y -> x = y
  | Ast.Var x, Ast.Var y -> x = y
  | Ast.Queue x, Ast.Queue y -> x = y
  | Ast.Subflows, Ast.Subflows -> true
  | Ast.Binop (o1, a1, b1), Ast.Binop (o2, a2, b2) ->
      o1 = o2 && eq_expr a1 a2 && eq_expr b1 b2
  | Ast.Unop (o1, a1), Ast.Unop (o2, a2) -> o1 = o2 && eq_expr a1 a2
  | Ast.Member (r1, n1, as1), Ast.Member (r2, n2, as2) ->
      n1 = n2 && eq_expr r1 r2
      && List.length as1 = List.length as2
      && List.for_all2 eq_arg as1 as2
  | _, _ -> false

and eq_arg a b =
  match (a, b) with
  | Ast.Arg_expr x, Ast.Arg_expr y -> eq_expr x y
  | Ast.Arg_lambda x, Ast.Arg_lambda y ->
      x.Ast.param = y.Ast.param && eq_expr x.Ast.body y.Ast.body
  | _, _ -> false

let rec eq_stmt (a : Ast.stmt) (b : Ast.stmt) =
  match (a.Ast.stmt_desc, b.Ast.stmt_desc) with
  | Ast.Var_decl (n1, e1), Ast.Var_decl (n2, e2) -> n1 = n2 && eq_expr e1 e2
  | Ast.If (c1, t1, e1), Ast.If (c2, t2, e2) ->
      eq_expr c1 c2 && eq_block t1 t2
      && (match (e1, e2) with
         | None, None -> true
         | Some x, Some y -> eq_block x y
         | _, _ -> false)
  | Ast.Foreach (n1, e1, b1), Ast.Foreach (n2, e2, b2) ->
      n1 = n2 && eq_expr e1 e2 && eq_block b1 b2
  | Ast.Set_register (r1, e1), Ast.Set_register (r2, e2) ->
      r1 = r2 && eq_expr e1 e2
  | Ast.Drop e1, Ast.Drop e2 -> eq_expr e1 e2
  | Ast.Expr_stmt e1, Ast.Expr_stmt e2 -> eq_expr e1 e2
  | Ast.Return, Ast.Return -> true
  | _, _ -> false

and eq_block a b = List.length a = List.length b && List.for_all2 eq_stmt a b

let roundtrip name src =
  tc name (fun () ->
      let p1 = Parser.parse src in
      let printed = Pretty.program_to_string p1 in
      let p2 =
        try Parser.parse printed
        with Parser.Error (m, loc) ->
          Alcotest.failf "reparse failed at %a: %s@\noutput was:@\n%s" Loc.pp
            loc m printed
      in
      if not (eq_block p1 p2) then
        Alcotest.failf "round trip changed the program:@\n%s" printed)

(* Random well-formed surface expressions (ints and bools only: entity
   expressions are covered by the zoo round trips). *)
let gen_expr =
  let open QCheck2.Gen in
  sized @@ fix (fun self n ->
      let leaf_int =
        oneof [ map (fun i -> Ast.mk_expr (Ast.Int (abs i))) small_int;
                map (fun i -> Ast.mk_expr (Ast.Register (abs i mod 6))) small_int ]
      in
      let leaf_bool = map (fun b -> Ast.mk_expr (Ast.Bool b)) bool in
      if n <= 0 then oneof [ leaf_int; leaf_bool ]
      else
        let sub = self (n / 2) in
        oneof
          [
            leaf_int;
            leaf_bool;
            map2 (fun a b -> Ast.mk_expr (Ast.Binop (Ast.Add, a, b))) sub sub;
            map2 (fun a b -> Ast.mk_expr (Ast.Binop (Ast.Mul, a, b))) sub sub;
            map2 (fun a b -> Ast.mk_expr (Ast.Binop (Ast.Sub, a, b))) sub sub;
            map2 (fun a b -> Ast.mk_expr (Ast.Binop (Ast.Lt, a, b))) sub sub;
            map (fun a -> Ast.mk_expr (Ast.Unop (Ast.Neg, a))) sub;
          ])

let roundtrip_random =
  QCheck2.Test.make ~name:"random expression round trips" ~count:300 gen_expr
    (fun e ->
      let src = Fmt.str "SET(R1, R1 * 0);VAR x = %a;" Pretty.pp_expr e in
      match Parser.parse src with
      | [ _; { Ast.stmt_desc = Ast.Var_decl ("x", e2); _ } ] -> eq_expr e e2
      | _ -> false)

let suite =
  [
    ( "pretty",
      [
        roundtrip "minimal minrtt" Schedulers.Specs.minrtt_minimal;
        roundtrip "nested if/else"
          "IF (TRUE) { IF (FALSE) { RETURN; } ELSE { SET(R1, 1); } }";
        roundtrip "foreach with body"
          "FOREACH (VAR s IN SUBFLOWS) { s.PUSH(Q.POP()); }";
        roundtrip "precedence preserved" "VAR x = (1 + 2) * 3 - -4;";
        roundtrip "boolean precedence" "VAR b = TRUE OR FALSE AND 1 < 2;";
        tc "all zoo specs round trip" (fun () ->
            List.iter
              (fun (name, src) ->
                let p1 = Parser.parse src in
                let printed = Pretty.program_to_string p1 in
                let p2 = Parser.parse printed in
                if not (eq_block p1 p2) then
                  Alcotest.failf "%s: round trip changed program" name)
              Schedulers.Specs.all);
        QCheck_alcotest.to_alcotest roundtrip_random;
      ] );
  ]

(* Semantic round trip: printing a zoo scheduler and re-loading the
   printed text yields a scheduler with identical behaviour. *)
let semantic_suite =
  [
    ( "pretty-semantic",
      [
        tc "printed zoo specs behave identically" (fun () ->
            List.iter
              (fun (name, src) ->
                let printed =
                  Pretty.program_to_string (Parser.parse src)
                in
                let original = load_anon src in
                let reprinted = load_anon printed in
                List.iter
                  (fun (_, spec) ->
                    let a1, q1, r1 = run_once original spec in
                    let a2, q2, r2 = run_once reprinted spec in
                    if (a1, q1, r1) <> (a2, q2, r2) then
                      Alcotest.failf "%s changed behaviour after printing" name)
                  [
                    ("default", default_env_spec);
                    ( "loaded",
                      {
                        default_env_spec with
                        qu_seqs = [ (9, [ 0 ]) ];
                        rq_seqs = [ 9 ];
                        regs = [ (0, 1_000_000); (1, 1) ];
                      } );
                  ])
              Schedulers.Specs.all);
      ] );
  ]
