(** Parser unit tests: structure of parsed specifications, precedence,
    and the paper's own example programs. *)

open Progmp_lang
open Helpers

let parse = Parser.parse

let expect_syntax_error name src =
  tc name (fun () ->
      match parse src with
      | _ -> Alcotest.failf "expected syntax error for %S" src
      | exception Parser.Error _ -> ())

let stmt_count src n =
  Alcotest.(check int) "statement count" n (List.length (parse src))

(* Navigate the parsed structure without locations. *)
let rec expr_to_string (e : Ast.expr) =
  match e.Ast.desc with
  | Ast.Int n -> string_of_int n
  | Ast.Bool b -> string_of_bool b
  | Ast.Null -> "null"
  | Ast.Register i -> Fmt.str "R%d" (i + 1)
  | Ast.Var v -> v
  | Ast.Queue q -> Ast.queue_name q
  | Ast.Subflows -> "SUBFLOWS"
  | Ast.Binop (op, a, b) ->
      Fmt.str "(%s %s %s)" (expr_to_string a) (Ast.binop_name op)
        (expr_to_string b)
  | Ast.Unop (Ast.Not, a) -> Fmt.str "(not %s)" (expr_to_string a)
  | Ast.Unop (Ast.Neg, a) -> Fmt.str "(neg %s)" (expr_to_string a)
  | Ast.Member (r, n, args) ->
      Fmt.str "%s.%s[%s]" (expr_to_string r) n
        (String.concat ","
           (List.map
              (function
                | Ast.Arg_expr e -> expr_to_string e
                | Ast.Arg_lambda l ->
                    Fmt.str "%s=>%s" l.Ast.param (expr_to_string l.Ast.body))
              args))

let first_expr src =
  match parse src with
  | [ { Ast.stmt_desc = Ast.Expr_stmt e; _ } ] -> expr_to_string e
  | [ { Ast.stmt_desc = Ast.Var_decl (_, e); _ } ] -> expr_to_string e
  | _ -> Alcotest.fail "expected a single expression statement"

let check_expr name src expected =
  tc name (fun () -> Alcotest.(check string) src expected (first_expr src))

let suite =
  [
    ( "parser",
      [
        check_expr "precedence: mul over add" "VAR x = 1 + 2 * 3;"
          "(1 + (2 * 3))";
        check_expr "precedence: add over compare" "VAR x = 1 + 2 < 3 + 4;"
          "((1 + 2) < (3 + 4))";
        check_expr "precedence: compare over AND" "VAR x = 1 < 2 AND 3 < 4;"
          "((1 < 2) AND (3 < 4))";
        check_expr "precedence: AND over OR" "VAR x = TRUE OR TRUE AND FALSE;"
          "(true OR (true AND false))";
        check_expr "parentheses override" "VAR x = (1 + 2) * 3;"
          "((1 + 2) * 3)";
        check_expr "unary not binds tight" "VAR x = !Q.EMPTY AND TRUE;"
          "((not Q.EMPTY[]) AND true)";
        check_expr "member chain" "VAR x = SUBFLOWS.MIN(sbf => sbf.RTT);"
          "SUBFLOWS.MIN[sbf=>sbf.RTT[]]";
        check_expr "chained filters"
          "VAR x = Q.FILTER(a => TRUE).FILTER(b => FALSE).COUNT;"
          "Q.FILTER[a=>true].FILTER[b=>false].COUNT[]";
        check_expr "null comparison" "VAR x = Q.TOP != NULL;"
          "(Q.TOP[] != null)";
        check_expr "subtraction is left associative" "VAR x = 5 - 2 - 1;"
          "((5 - 2) - 1)";
        check_expr "division and modulo" "VAR x = 7 / 2 % 3;"
          "((7 / 2) % 3)";
        tc "if/else if chains" (fun () ->
            match
              parse "IF (TRUE) { RETURN; } ELSE IF (FALSE) { RETURN; } ELSE { RETURN; }"
            with
            | [ { Ast.stmt_desc = Ast.If (_, _, Some [ inner ]); _ } ] -> (
                match inner.Ast.stmt_desc with
                | Ast.If (_, _, Some _) -> ()
                | _ -> Alcotest.fail "expected nested if in else branch")
            | _ -> Alcotest.fail "expected if statement");
        tc "foreach structure" (fun () ->
            match parse "FOREACH (VAR sbf IN SUBFLOWS) { sbf.PUSH(Q.POP()); }" with
            | [ { Ast.stmt_desc = Ast.Foreach ("sbf", _, [ _ ]); _ } ] -> ()
            | _ -> Alcotest.fail "expected foreach");
        tc "set register" (fun () ->
            match parse "SET(R3, R3 + 1);" with
            | [ { Ast.stmt_desc = Ast.Set_register (2, _); _ } ] -> ()
            | _ -> Alcotest.fail "expected SET of R3");
        tc "drop statement" (fun () ->
            match parse "DROP(Q.POP());" with
            | [ { Ast.stmt_desc = Ast.Drop _; _ } ] -> ()
            | _ -> Alcotest.fail "expected DROP");
        tc "paper fig 3 parses" (fun () ->
            stmt_count Schedulers.Specs.minrtt_minimal 1);
        tc "paper fig 5 (round robin) parses" (fun () ->
            stmt_count Schedulers.Specs.round_robin 3);
        tc "every zoo spec parses" (fun () ->
            List.iter
              (fun (name, src) ->
                match parse src with
                | [] -> Alcotest.failf "%s parsed to an empty program" name
                | _ :: _ -> ())
              Schedulers.Specs.all);
        expect_syntax_error "missing semicolon" "VAR x = 1";
        expect_syntax_error "missing paren" "IF (TRUE { RETURN; }";
        expect_syntax_error "missing brace" "IF (TRUE) RETURN;";
        expect_syntax_error "SET on non-register" "SET(x, 1);";
        expect_syntax_error "empty expression" "VAR x = ;";
        expect_syntax_error "dangling dot" "VAR x = Q.;";
        expect_syntax_error "bad foreach" "FOREACH (sbf IN SUBFLOWS) { }";
      ] );
  ]
