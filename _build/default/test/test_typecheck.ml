(** Type-checker tests: the static guarantees of Table 1 — typing rules,
    single assignment, purity of predicates, queue views not being
    first-class, graceful NULL handling. *)

open Progmp_lang
open Helpers

let ok name src =
  tc name (fun () ->
      match Typecheck.compile_source src with
      | (_ : Tast.program) -> ()
      | exception Typecheck.Error (m, loc) ->
          Alcotest.failf "unexpected type error at %a: %s" Loc.pp loc m)

let bad name src = tc name (fun () -> check_type_error src)

let suite =
  [
    ( "typecheck",
      [
        ok "int arithmetic" "VAR x = 1 + 2 * 3 - 4 / 2 % 3;";
        ok "bool logic" "VAR b = TRUE AND !FALSE OR 1 < 2;";
        ok "subflow property" "VAR x = SUBFLOWS.MIN(s => s.RTT).CWND;";
        ok "packet property through filter"
          "VAR x = Q.FILTER(p => p.SIZE > 100).COUNT;";
        ok "null comparison both sides"
          "IF (NULL == Q.TOP) { RETURN; } IF (Q.TOP != NULL) { RETURN; }";
        ok "subflow null comparison"
          "IF (SUBFLOWS.MIN(s => s.RTT) != NULL) { RETURN; }";
        ok "registers are ints" "SET(R1, R2 + R6);";
        ok "pop in var decl" "VAR skb = Q.POP();";
        ok "pop as push argument"
          "IF (!SUBFLOWS.EMPTY) { SUBFLOWS.GET(0).PUSH(Q.POP()); }";
        ok "pop in drop" "DROP(Q.POP());";
        ok "sent_on and has_window_for"
          "VAR s = SUBFLOWS.GET(0);\n\
           VAR x = QU.FILTER(p => !p.SENT_ON(s)).TOP;\n\
           IF (x != NULL AND s.HAS_WINDOW_FOR(x)) { s.PUSH(x); }";
        ok "user packet properties" "VAR x = Q.FILTER(p => p.PROP1 == 1).COUNT;";
        ok "name reuse after scope ends"
          "VAR a = SUBFLOWS.FILTER(sbf => !sbf.LOSSY);\n\
           VAR b = a.MIN(sbf => sbf.RTT);";
        ok "sum over subflows" "VAR t = SUBFLOWS.SUM(s => s.THROUGHPUT);";
        ok "queue min/max" "VAR p = QU.MIN(x => x.SEQ); VAR q = QU.MAX(y => y.SEQ);";
        (* ---- rejections ---- *)
        bad "pop in if condition (the paper's Q.POP().RTT pitfall)"
          "IF (Q.POP().SIZE > 0) { RETURN; }";
        bad "pop inside filter predicate"
          "VAR x = SUBFLOWS.FILTER(s => Q.POP() != NULL).COUNT;";
        bad "pop in set value" "SET(R1, Q.POP().SIZE);";
        bad "pop in foreach source"
          "FOREACH (VAR s IN SUBFLOWS.FILTER(x => Q.POP() == NULL)) { RETURN; }";
        bad "queue stored in variable" "VAR v = Q.FILTER(p => TRUE);";
        bad "bare queue in variable" "VAR v = Q;";
        bad "redeclaration in same scope" "VAR x = 1; VAR x = 2;";
        bad "shadowing in nested block" "VAR x = 1; IF (TRUE) { VAR x = 2; }";
        bad "lambda shadowing outer variable"
          "VAR s = 1; VAR y = SUBFLOWS.FILTER(s => TRUE).COUNT;";
        bad "unknown variable" "VAR x = y + 1;";
        bad "unknown subflow property" "VAR x = SUBFLOWS.GET(0).FOO;";
        bad "unknown packet property" "VAR x = Q.TOP.BAR;";
        bad "int where bool expected" "IF (1) { RETURN; }";
        bad "bool arithmetic" "VAR x = TRUE + 1;";
        bad "comparing packet to int" "VAR x = Q.TOP == 1;";
        bad "comparing packet to subflow"
          "VAR x = Q.TOP == SUBFLOWS.GET(0);";
        bad "push as expression" "VAR x = SUBFLOWS.GET(0).PUSH(Q.POP());";
        bad "push of null literal" "SUBFLOWS.GET(0).PUSH(NULL);";
        bad "null stored in variable" "VAR x = NULL;";
        bad "bare null condition" "IF (NULL) { RETURN; }";
        bad "expression statement without effect" "1 + 2;";
        bad "expression statement non-push member" "Q.TOP;";
        bad "filter with non-bool lambda"
          "VAR x = SUBFLOWS.FILTER(s => s.RTT).COUNT;";
        bad "min with bool lambda"
          "VAR x = SUBFLOWS.MIN(s => s.LOSSY);";
        bad "get with bool index" "VAR x = SUBFLOWS.GET(TRUE);";
        bad "set with bool value" "SET(R1, TRUE);";
        bad "drop of a subflow" "DROP(SUBFLOWS.GET(0));";
        bad "push packet on packet" "Q.TOP.PUSH(Q.POP());";
        bad "foreach over queue" "FOREACH (VAR p IN Q) { RETURN; }";
        bad "min over queue without lambda arg" "VAR x = Q.MIN();";
        bad "filter arity" "VAR x = SUBFLOWS.FILTER().COUNT;";
        bad "too many args to TOP" "VAR x = Q.TOP(1);";
        tc "every zoo spec typechecks" (fun () ->
            List.iter
              (fun (name, src) ->
                match Typecheck.compile_source src with
                | (_ : Tast.program) -> ()
                | exception Typecheck.Error (m, loc) ->
                    Alcotest.failf "%s: type error at %a: %s" name Loc.pp loc m)
              Schedulers.Specs.all);
        tc "slot count is bounded" (fun () ->
            List.iter
              (fun (_, src) ->
                let p = Typecheck.compile_source src in
                Alcotest.(check bool)
                  "slots within bound" true
                  (p.Tast.num_slots <= Typecheck.max_slots))
              Schedulers.Specs.all);
        tc "slot types recorded" (fun () ->
            let p = Typecheck.compile_source "VAR x = 1; VAR b = TRUE;" in
            Alcotest.(check int) "two slots" 2 p.Tast.num_slots;
            Alcotest.(check string) "slot 0 int" "int"
              (Ty.to_string p.Tast.slot_types.(0));
            Alcotest.(check string) "slot 1 bool" "bool"
              (Ty.to_string p.Tast.slot_types.(1)));
        tc "uses_pop detection" (fun () ->
            let p1 = Typecheck.compile_source "VAR x = Q.POP();" in
            let p2 = Typecheck.compile_source "VAR x = Q.TOP;" in
            Alcotest.(check bool) "pop" true (Tast.uses_pop p1);
            Alcotest.(check bool) "no pop" false (Tast.uses_pop p2));
      ] );
  ]
