(** Optimizer tests: folding rules on crafted programs, plus the
    semantics-preservation property — optimized and unoptimized programs
    behave identically on random environments. *)

open Progmp_lang
open Helpers

let opt src = Optimize.program (Typecheck.compile_source src)

let stmt_count p = List.length p.Tast.body

(* Count nodes of the whole program, for shrinkage assertions. *)
let node_count p =
  Tast.fold_stmts (fun acc _ -> acc + 1) 0 p.Tast.body

let suite_cases =
  [
    tc "constant condition inlines the branch" (fun () ->
        let p = opt "IF (1 < 2) { SET(R1, 1); } ELSE { SET(R1, 2); }" in
        match p.Tast.body with
        | [ Tast.If ({ Tast.desc = Tast.Bool_lit true; _ }, [ Tast.Set_register (0, _) ], []) ] ->
            ()
        | _ -> Alcotest.fail "expected folded IF with only the then-branch");
    tc "false condition keeps only the else branch" (fun () ->
        let p = opt "IF (2 < 1) { SET(R1, 1); } ELSE { SET(R1, 2); }" in
        match p.Tast.body with
        | [ Tast.If (_, [], [ Tast.Set_register (0, e) ]) ] -> (
            match e.Tast.desc with
            | Tast.Int_lit 2 -> ()
            | _ -> Alcotest.fail "wrong else content")
        | _ -> Alcotest.fail "expected else-only IF");
    tc "false condition with no else vanishes" (fun () ->
        let p = opt "IF (FALSE) { SET(R1, 1); }" in
        Alcotest.(check int) "no statements" 0 (stmt_count p));
    tc "empty if with pure condition vanishes" (fun () ->
        let p = opt "IF (Q.EMPTY) { IF (FALSE) { SET(R1, 1); } }" in
        Alcotest.(check int) "no statements" 0 (stmt_count p));
    tc "arithmetic folds" (fun () ->
        let p = opt "SET(R1, 2 * 3 + 10 / 2 - 1);" in
        match p.Tast.body with
        | [ Tast.Set_register (0, { Tast.desc = Tast.Int_lit 10; _ }) ] -> ()
        | _ -> Alcotest.fail "expected folded constant 10");
    tc "division by zero folds to zero" (fun () ->
        let p = opt "SET(R1, 7 / 0 + 7 % 0);" in
        match p.Tast.body with
        | [ Tast.Set_register (0, { Tast.desc = Tast.Int_lit 0; _ }) ] -> ()
        | _ -> Alcotest.fail "expected 0");
    tc "identity operations simplify" (fun () ->
        let p = opt "SET(R1, (R2 + 0) * 1);" in
        match p.Tast.body with
        | [ Tast.Set_register (0, { Tast.desc = Tast.Register 1; _ }) ] -> ()
        | _ -> Alcotest.fail "expected bare register read");
    tc "boolean short circuits simplify" (fun () ->
        let p = opt "IF (TRUE AND Q.EMPTY OR FALSE) { SET(R1, 1); }" in
        match p.Tast.body with
        | [ Tast.If ({ Tast.desc = Tast.Q_empty _; _ }, _, []) ] -> ()
        | _ -> Alcotest.fail "expected condition reduced to Q.EMPTY");
    tc "double negation cancels" (fun () ->
        let p = opt "IF (!!Q.EMPTY) { SET(R1, 1); }" in
        match p.Tast.body with
        | [ Tast.If ({ Tast.desc = Tast.Q_empty _; _ }, _, _) ] -> ()
        | _ -> Alcotest.fail "expected bare Q.EMPTY");
    tc "statements after return are dropped" (fun () ->
        let p = opt "SET(R1, 1); RETURN; SET(R2, 2); SET(R3, 3);" in
        Alcotest.(check int) "two statements" 2 (stmt_count p));
    tc "always-true filters are dropped from views" (fun () ->
        let p = opt "SET(R1, Q.FILTER(p => TRUE).FILTER(q => q.SIZE > 0).COUNT);" in
        match p.Tast.body with
        | [ Tast.Set_register (0, { Tast.desc = Tast.Q_count view; _ }) ] ->
            Alcotest.(check int) "one filter left" 1
              (List.length view.Tast.filters)
        | _ -> Alcotest.fail "expected count over view");
    tc "optimization never grows the zoo" (fun () ->
        List.iter
          (fun (name, src) ->
            let p = Typecheck.compile_source src in
            let p' = Optimize.program p in
            if node_count p' > node_count p then
              Alcotest.failf "%s grew under optimization" name)
          Schedulers.Specs.all);
    tc "pop in an if-less statement is preserved" (fun () ->
        (* DROP(Q.POP()) must survive even though its value is unused *)
        let p = opt "DROP(Q.POP());" in
        Alcotest.(check int) "kept" 1 (stmt_count p));
  ]

(* Property: optimized program ≡ original program on random envs. *)
let preservation =
  QCheck2.Test.make ~name:"optimization preserves semantics" ~count:500
    (QCheck2.Gen.pair Gen.gen_program Gen.gen_env_spec)
    (fun (ast, spec) ->
      let p = Typecheck.check ast in
      let p' = Optimize.program p in
      let observe program =
        let env, views = build spec in
        Progmp_runtime.Env.begin_execution env ~subflows:views;
        Progmp_runtime.Interpreter.run program env;
        let actions =
          List.map norm_action (Progmp_runtime.Env.finish_execution env)
        in
        ( actions,
          seqs_of env.Progmp_runtime.Env.q,
          seqs_of env.Progmp_runtime.Env.qu,
          Array.to_list env.Progmp_runtime.Env.registers )
      in
      observe p = observe p')

let suite =
  [ ("optimize", suite_cases @ [ QCheck_alcotest.to_alcotest preservation ]) ]
