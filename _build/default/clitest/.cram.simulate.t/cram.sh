  $ ../bin/simulate.exe bulk --duration 40
  $ ../bin/simulate.exe short-flows -s compensating --loss 0.02
  $ ../bin/simulate.exe http2 -s http2_aware
  $ ../bin/simulate.exe bulk --duration 40 --engine vm | head -2
  $ ../bin/simulate.exe bulk --duration 40 --engine aot | head -2
  $ ../bin/simulate.exe bulk -s nonsense
  $ ../bin/simulate.exe bulk --engine jit
  $ cat > outage.fs << EOF
  > # one-second outage on the first path
  > 0.5 sbf1 down
  > 1.5 sbf1 up
  > EOF
  $ ../bin/simulate.exe bulk --duration 40 --faults outage.fs --check-invariants
  $ cat > bad.fs << EOF
  > 0.5 sbf1 down
  > 1.0 sbf1 explode
  > EOF
  $ ../bin/simulate.exe bulk --faults bad.fs
