  $ ../bin/simulate.exe bulk --duration 40
  $ ../bin/simulate.exe short-flows -s compensating --loss 0.02
  $ ../bin/simulate.exe http2 -s http2_aware
  $ ../bin/simulate.exe bulk -s nonsense
