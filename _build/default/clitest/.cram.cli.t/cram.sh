  $ ../bin/progmp_cli.exe list
  $ ../bin/progmp_cli.exe show minrtt_minimal
  $ ../bin/progmp_cli.exe check round_robin
  $ cat > mine.progmp <<'SPEC'
  > IF (!Q.EMPTY) {
  >   VAR sbf = SUBFLOWS.MIN(s => s.RTT_VAR);
  >   IF (sbf != NULL) { sbf.PUSH(Q.POP()); }
  > }
  > SPEC
  $ ../bin/progmp_cli.exe check mine.progmp
  $ echo 'SET(R1, R1 + 1);' | ../bin/progmp_cli.exe check -
  $ echo 'IF (Q.POP().SIZE > 0) { RETURN; }' | ../bin/progmp_cli.exe check -
  $ echo 'VAR q = Q;' | ../bin/progmp_cli.exe check -
  $ echo 'VAR x = 1; VAR x = 2;' | ../bin/progmp_cli.exe check -
  $ ../bin/progmp_cli.exe compile minrtt_minimal
  $ echo 'SET(R2, R1 + 1);' | ../bin/progmp_cli.exe compile - --disasm
  $ ../bin/progmp_cli.exe run minrtt_minimal -n 2
  $ ../bin/progmp_cli.exe engines
  $ ../bin/progmp_cli.exe run minrtt_minimal --engine vm | tail -3
  $ ../bin/progmp_cli.exe run minrtt_minimal --engine aot | tail -3
  $ ../bin/progmp_cli.exe run minrtt_minimal --backend vm | tail -2
  $ ../bin/progmp_cli.exe run minrtt_minimal --engine jit
  $ ../bin/progmp_cli.exe run round_robin -n 2 -r 3=1
  $ ../bin/progmp_cli.exe run minrtt_minimal -n 2 --profile | tail -2
  $ ../bin/progmp_cli.exe gen-ocaml minrtt_minimal | head -9
